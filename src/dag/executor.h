// DagExecutor: executes a validated Dag over a WorkflowManager's registry.
//
// Per edge it selects the cheapest transfer mode the placement allows (user /
// kernel / network, §3.2.3) and moves the predecessor's output region through
// the shared HopTable — the same cached channels RunChain uses. Fan-out
// replicates one output region to every successor (each over its own hop,
// concurrently, on the scheduler's worker pool); fan-in delivers every
// predecessor's payload into the join function's linear memory, concatenates
// them in edge-declaration order, and invokes the join exactly once.
//
// Functions behind a remote NodeAgent ingress (Endpoint::port != 0) are
// invoke-coupled: the agent's receiver performs Algorithm 1's receive+invoke
// on its node. For those targets the executor sends one frame (predecessor
// payloads merged host-side for fan-in) and waits for the agent's delivery
// callback — wire DeliverySink() into NodeAgent::RegisterFunction to route
// outcomes back.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "core/node_agent.h"
#include "core/workflow.h"
#include "dag/dag.h"
#include "dag/scheduler.h"
#include "telemetry/metrics.h"

namespace rr::dag {

class DagExecutor {
 public:
  // `manager` must outlive the executor. 0 workers = hardware concurrency.
  explicit DagExecutor(core::WorkflowManager* manager, size_t workers = 0)
      : manager_(manager), scheduler_(workers) {}

  // Runs the DAG: `input` is delivered to every source node; the sink
  // functions' outputs (concatenated in declaration order when there are
  // several sinks) are materialized as the result. Per-edge transfer
  // latencies land in `stats` when non-null. On any node failure the run
  // cancels — downstream nodes never execute — and the first error returns.
  //
  // Executions serialize on an internal mutex. A remote-delivery deadline
  // failure evicts the hop, so the agent-side worker dies with the
  // connection and a frame still in flight is dropped; a delivery that
  // already arrived is released by the next Execute's purge. Residual
  // window (the agent's wire protocol carries no per-transfer token): a
  // remote invoke that completes between the timeout and the next run's
  // send for the same function can still be claimed by that run.
  Result<Bytes> Execute(const Dag& dag, ByteSpan input,
                        telemetry::DagRunStats* stats = nullptr);

  // Delivery callback for NodeAgent-registered functions: routes the remote
  // invoke's outcome back into the executor so the DAG can continue past the
  // remote node. The executor must outlive the agent's use of the callback.
  core::NodeAgent::DeliveryCallback DeliverySink();

  // How long a remote (NodeAgent) delivery may take before the edge fails
  // with kDeadlineExceeded. Generous by default: paper-scale payloads cross
  // an emulated 100 Mbps link.
  void set_remote_deadline(Nanos deadline) { remote_deadline_ = deadline; }

  size_t worker_count() const { return scheduler_.worker_count(); }

 private:
  struct NodeRun;
  struct StatsState;

  Status RunNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                 ByteSpan input, StatsState& stats);
  static void ReleaseConsumedPreds(const DagNode& node,
                                   std::vector<NodeRun>& runs);
  Status RunRemoteNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                       StatsState& stats);
  Result<core::InvokeOutcome> WaitForDelivery(const std::string& function,
                                              uint64_t run_id);
  void PurgeStaleDeliveries(uint64_t current_run_id);
  void ReleaseDelivery(const std::string& function,
                       const core::InvokeOutcome& outcome);

  core::WorkflowManager* manager_;
  DagScheduler scheduler_;
  std::mutex execute_mutex_;  // one Execute at a time (mailbox epoch)

  // Mailbox for outcomes delivered by remote NodeAgents, stamped with the
  // run they arrived during so stale deliveries are released, not claimed.
  struct Delivery {
    uint64_t run_id;
    core::InvokeOutcome outcome;
  };
  std::mutex mail_mutex_;
  std::condition_variable mail_cv_;
  std::map<std::string, std::deque<Delivery>> mailbox_;
  std::atomic<uint64_t> run_id_{0};
  Nanos remote_deadline_ = std::chrono::seconds(60);
};

}  // namespace rr::dag
