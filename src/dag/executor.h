// DagExecutor: executes a validated Dag over a WorkflowManager's registry.
//
// Per edge it obtains the placement-selected hop from the shared HopTable
// (the same cached channels chains use) and speaks only the polymorphic Hop
// interface — no transfer-mode switches live here. Payloads move on the
// zero-copy plane (core/payload.h):
//
//  * Fan-out shares ONE immutable buffer across all successors: the
//    producer's output is egressed exactly once and every successor's
//    delivery reads the same ref-counted chunk, so an N-way fan-out performs
//    O(1) payload copies — and the successors' ingress writes proceed in
//    parallel on the scheduler's workers because the producer's shim is no
//    longer locked during the wire phase.
//  * Fan-in gathers predecessor payloads directly into ONE pre-allocated
//    region of the join function's memory (each leg delivered over its own
//    placement-selected hop into its slice, in edge-declaration order) —
//    the old per-predecessor staging regions and the intermediate merge
//    allocation are gone. The join is invoked exactly once.
//  * A single-successor edge keeps the guest-direct fast path: the payload
//    stays guest-resident and a user-space hop performs the classic single
//    copy between the two linear memories.
//
// Functions behind a remote NodeAgent ingress are served by invoke-coupled
// hops: the executor Dispatches one frame (a fan-in's predecessor chunks
// vectored into one frame without a host merge copy) stamped with a fresh
// correlation token, and the agent's delivery callback — wire DeliverySink()
// into NodeAgent::RegisterFunction — completes the transfer. Tokens make the
// attribution exact: a completion belonging to a timed-out or cancelled
// transfer matches no pending token and is rejected with kTokenMismatch
// (and its output released), never claimed by a later run.
//
// Execution is reentrant: concurrent runs (api::Runtime keeps many
// invocations in flight) share the worker pool, the hop cache, and the
// delivery mailbox; per-run state lives on the caller's stack. There is no
// public synchronous entry — api::Runtime::Submit is the way to run a DAG
// (the former direct Execute entry is gone with WorkflowManager::RunChain).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/node_agent.h"
#include "core/payload.h"
#include "core/workflow.h"
#include "dag/dag.h"
#include "dag/scheduler.h"
#include "telemetry/metrics.h"

namespace rr::api {
class Runtime;
}  // namespace rr::api

namespace rr::dag {

class DagExecutor {
 public:
  // `manager` must outlive the executor. 0 workers = hardware concurrency.
  explicit DagExecutor(core::WorkflowManager* manager, size_t workers = 0)
      : manager_(manager), scheduler_(workers) {}

  // Delivery callback for NodeAgent-registered functions: routes the remote
  // invoke's outcome back into the executor so the DAG can continue past the
  // remote node. The executor must outlive the agent's use of the callback.
  core::NodeAgent::DeliveryCallback DeliverySink();

  // Routes one remote completion to the transfer that dispatched `token`.
  // `instance` is the agent-side pool lease holding the outcome's output
  // region; a matched completion hands it to the waiting transfer (which
  // pins it in the node's payload), an unmatched one — late completion of a
  // timed-out edge, a cancelled run, or an untracked sender — returns
  // kTokenMismatch, releasing the output region and the instance. Exposed
  // for DeliverySink and for protocol tests.
  Status DeliverOutcome(const std::string& function,
                        core::InvokeOutcome outcome, uint64_t token,
                        core::ShimLease instance);

  // How long a remote (NodeAgent) delivery may take before the edge fails
  // with kDeadlineExceeded. Generous by default: paper-scale payloads cross
  // an emulated 100 Mbps link.
  void set_remote_deadline(Nanos deadline) { remote_deadline_ = deadline; }

  size_t worker_count() const { return scheduler_.worker_count(); }

 private:
  friend class rr::api::Runtime;

  struct NodeRun;
  struct StatsState;

  // Runs the DAG: `input` is shared (never copied) with every source node;
  // the sink functions' outputs (concatenated in declaration order when
  // there are several sinks, by chunk sharing) are returned as one buffer.
  // On any node failure the run cancels — downstream nodes never execute —
  // and the first error returns; the payload plane's refcounts release every
  // still-live output. Safe to call from many threads at once; reachable
  // only through api::Runtime::Submit.
  Result<rr::Buffer> Execute(const Dag& dag, const rr::Buffer& input,
                             telemetry::DagRunStats* stats = nullptr);

  // One remote completion: the outcome plus the agent-side instance lease
  // holding its output region.
  struct RemoteCompletion {
    core::InvokeOutcome outcome;
    core::ShimLease instance;
  };

  Status RunNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                 const rr::Buffer& input, StatsState& stats);
  Status RunLocalNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                      const std::vector<std::shared_ptr<core::Hop>>& pred_hops,
                      StatsState& stats);
  Status RunRemoteNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                       core::Hop& hop, StatsState& stats);
  Status FinishNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                    core::Shim* instance, core::InvokeOutcome outcome);
  static void ReleaseConsumedPreds(const DagNode& node,
                                   std::vector<NodeRun>& runs);
  Result<RemoteCompletion> WaitForDelivery(const std::string& function,
                                           uint64_t token);

  core::WorkflowManager* manager_;
  DagScheduler scheduler_;

  // Pending invoke-coupled transfers, keyed by correlation token. A slot is
  // registered before its frame is dispatched and erased by the waiter
  // (fulfilled or timed out); completions matching no slot are rejected.
  struct Pending {
    bool fulfilled = false;
    core::InvokeOutcome outcome;
    core::ShimLease instance;
  };
  std::mutex mail_mutex_;
  std::condition_variable mail_cv_;
  std::map<uint64_t, Pending> pending_;
  std::atomic<uint64_t> next_token_{1};
  Nanos remote_deadline_ = std::chrono::seconds(60);
};

}  // namespace rr::dag
