// DagExecutor: executes a validated Dag over a WorkflowManager's registry.
//
// Per edge it obtains the placement-selected hop from the shared HopTable
// (the same cached channels chains use) and speaks only the polymorphic Hop
// interface — no transfer-mode switches live here. Payloads move on the
// zero-copy plane (core/payload.h):
//
//  * Fan-out shares ONE immutable buffer across all successors: the
//    producer's output is egressed exactly once and every successor's
//    delivery reads the same ref-counted chunk, so an N-way fan-out performs
//    O(1) payload copies — and the successors' ingress writes proceed in
//    parallel on the scheduler's workers because the producer's shim is no
//    longer locked during the wire phase.
//  * Fan-in gathers predecessor payloads directly into ONE pre-allocated
//    region of the join function's memory (each leg delivered over its own
//    placement-selected hop into its slice, in edge-declaration order) —
//    the old per-predecessor staging regions and the intermediate merge
//    allocation are gone. The join is invoked exactly once.
//  * A single-successor edge keeps the guest-direct fast path: the payload
//    stays guest-resident and a user-space hop performs the classic single
//    copy between the two linear memories.
//
// Functions behind a remote NodeAgent ingress are served by invoke-coupled
// hops, COMPLETION-DRIVEN: the executor assembles one frame (a fan-in's
// predecessor chunks vectored without a host merge copy), registers a
// continuation slot keyed by a fresh correlation token, DEFERS the node with
// the scheduler (DagScheduler::Ticket), and initiates the transfer with
// Hop::DispatchAsync — then the worker moves on. The node retires when the
// first of three signals resolves the slot:
//
//  * the agent's delivery callback (DeliverySink -> DeliverOutcome) carrying
//    the remote invocation's outcome and output lease — the success path;
//  * the hop's DispatchAsync callback with an error — on the mux wire this
//    is the agent's completion frame, so a remote HANDLER failure fails the
//    edge immediately instead of waiting out the deadline;
//  * the remote_deadline sweeper — now a BACKSTOP for a far side that went
//    fully silent (legacy-wire invoke failure, dead agent, lost frame).
//
// No scheduler worker ever parks on a wire wait, so in-flight remote edges
// are bounded by memory, not pool width. Tokens make the attribution exact:
// a completion belonging to a timed-out or cancelled transfer matches no
// pending token and is rejected with kTokenMismatch (its output released),
// never claimed by a later run.
//
// FAILURE RECOVERY (resilience/policy.h): when a run's ResiliencePolicy is
// enabled, a retryable attempt failure does not complete the ticket — the
// slot re-registers under a FRESH token in a backoff phase and the sweeper
// re-dispatches it when the (decorrelated-jitter) delay passes, so no
// worker parks in a backoff sleep and a late completion of the failed
// attempt can only miss (its token is gone → kTokenMismatch, counted in
// rr_stale_deliveries_total). Replica selection starts each attempt at the
// last replica used and skips replicas whose circuit breaker (HopTable)
// refuses admission; when one replica's attempts are spent the selection
// start advances — failover in registration order, wrapping. The dispatch
// frame is a ref-counted immutable rr::Buffer held by the slot, so a
// redispatch costs refcounts, not copies.
//
// Execution is reentrant: concurrent runs (api::Runtime keeps many
// invocations in flight) share the worker pool, the hop cache, and the
// delivery mailbox; per-run state lives on the caller's stack, kept valid by
// the scheduler (a deferred node keeps its Run blocked). There is no public
// synchronous entry — api::Runtime::Submit is the way to run a DAG.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/node_agent.h"
#include "core/payload.h"
#include "core/workflow.h"
#include "dag/dag.h"
#include "dag/scheduler.h"
#include "obs/trace.h"
#include "resilience/policy.h"
#include "telemetry/metrics.h"

namespace rr::api {
class Runtime;
}  // namespace rr::api

namespace rr::dag {

class DagExecutor {
 public:
  // `manager` must outlive the executor. 0 workers = hardware concurrency.
  explicit DagExecutor(core::WorkflowManager* manager, size_t workers = 0)
      : manager_(manager), scheduler_(workers) {
    life_->owner = this;
  }
  ~DagExecutor();

  // Delivery callback for NodeAgent-registered functions: routes the remote
  // invoke's outcome back into the executor so the DAG can continue past the
  // remote node. The executor must outlive the agent's use of the callback.
  core::NodeAgent::DeliveryCallback DeliverySink();

  // Routes one remote completion to the transfer that dispatched `token`,
  // resolving its continuation slot: the outcome finishes the node and the
  // scheduler releases its successors. `instance` is the agent-side pool
  // lease holding the outcome's output region; a matched completion hands it
  // to the node (which pins it in the node's payload), an unmatched one —
  // late completion of a timed-out edge, a cancelled run, or an untracked
  // sender — returns kTokenMismatch, releasing the output region and the
  // instance. Exposed for DeliverySink and for protocol tests.
  Status DeliverOutcome(const std::string& function,
                        core::InvokeOutcome outcome, uint64_t token,
                        core::ShimLease instance);

  // Backstop on one remote (NodeAgent) edge: how long from dispatch until
  // the edge fails with kDeadlineExceeded when NO signal arrives — neither a
  // delivery callback nor a completion frame. Failures that do speak (a mux
  // completion frame, a dead channel) resolve the edge immediately,
  // regardless of this value. Non-positive disables the backstop entirely
  // (unbounded) — it never means "expire immediately". With retries enabled
  // the backstop bounds EACH attempt, not the edge.
  void set_remote_deadline(Nanos deadline) { remote_deadline_ = deadline; }

  // Default retry policy for runs that do not carry their own (the
  // per-DagSpec override threads through Execute).
  void set_resilience_policy(resilience::ResiliencePolicy policy) {
    policy_ = policy;
  }

  size_t worker_count() const { return scheduler_.worker_count(); }

 private:
  friend class rr::api::Runtime;

  struct NodeRun;
  struct StatsState;

  // Per-run resilience state, living on Execute's stack beside StatsState:
  // the resolved policy, the shared retry budget, and the jitter stream
  // (guarded by mail_mutex_ — backoff draws happen under it).
  struct RunResilience {
    resilience::ResiliencePolicy policy;
    resilience::RetryBudget budget;
    rr::Rng rng;

    explicit RunResilience(const resilience::ResiliencePolicy& p)
        : policy(p), budget(p.enabled ? p.run_retry_budget : 0),
          rng(p.jitter_seed) {}
  };

  // Runs the DAG: `input` is shared (never copied) with every source node;
  // the sink functions' outputs (concatenated in declaration order when
  // there are several sinks, by chunk sharing) are returned as one buffer.
  // On any node failure the run cancels — downstream nodes never execute —
  // and the first error returns; the payload plane's refcounts release every
  // still-live output. Safe to call from many threads at once; reachable
  // only through api::Runtime::Submit. `policy_override` (a per-DagSpec
  // ResiliencePolicy) replaces the executor default for this run.
  Result<rr::Buffer> Execute(
      const Dag& dag, const rr::Buffer& input,
      telemetry::DagRunStats* stats = nullptr,
      const std::optional<resilience::ResiliencePolicy>& policy_override =
          std::nullopt);

  Status RunNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                 const rr::Buffer& input, StatsState& stats,
                 RunResilience& res, const DagScheduler::DeferFn& defer);
  Status RunLocalNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                      const std::vector<std::shared_ptr<core::Hop>>& pred_hops,
                      StatsState& stats);
  Status RunRemoteNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                       StatsState& stats, RunResilience& res,
                       const DagScheduler::DeferFn& defer);
  Status FinishNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                    core::Shim* instance, core::InvokeOutcome outcome);
  static void ReleaseConsumedPreds(const DagNode& node,
                                   std::vector<NodeRun>& runs);

  // One pending invoke-coupled transfer: the deferred node's continuation,
  // registered before its frame is dispatched. The raw pointers target the
  // Run's stack state, valid until the ticket completes (the scheduler keeps
  // the Run blocked while the node is outstanding) — so every resolution
  // path touches them strictly BEFORE Ticket::Complete.
  //
  // With retries, a slot cycles between two phases under a CHANGING token:
  // kInFlight (dispatched, waiting on a signal) and kBackoff (waiting for
  // retry_at; the sweeper re-dispatches it). Each cycle re-registers the
  // slot under a fresh token, so any signal for a previous attempt finds
  // nothing — first-taker-wins resolution needs no generation counters.
  struct Pending {
    enum class Phase { kInFlight, kBackoff };

    std::string function;  // target function = hop-cache eviction key
    DagScheduler::Ticket ticket;
    const Dag* dag = nullptr;
    size_t index = 0;
    std::vector<NodeRun>* runs = nullptr;
    StatsState* stats = nullptr;
    RunResilience* res = nullptr;
    std::shared_ptr<core::Hop> hop;
    std::vector<uint64_t> part_bytes;  // per-predecessor frame contribution
    Nanos frame_wasm_io{0};            // egress time of frame assembly
    rr::Buffer frame;                  // immutable dispatch frame (refcounted)
    obs::SpanContext trace_ctx{};      // re-installed around each redispatch
    TimePoint dispatched_at{};
    // kInFlight: dispatched_at + remote_deadline_ per ATTEMPT, or
    // TimePoint::max() while the backstop is disabled or the dispatch has
    // not initiated yet.
    TimePoint deadline{};
    Phase phase = Phase::kInFlight;
    TimePoint retry_at{};      // kBackoff: when the sweeper re-dispatches
    Nanos prev_backoff{0};     // decorrelated-jitter recurrence state
    uint32_t total_attempts = 0;
    uint32_t attempts_on_replica = 0;
    size_t replica = 0;        // where the next selection starts
    static constexpr size_t kNoReplica = static_cast<size_t>(-1);
    size_t last_replica = kNoReplica;  // replica of the last dispatched attempt
  };

  // Extracts the slot under mail_mutex_ (first taker wins; later signals
  // find nothing and no-op). Resolution then runs outside the lock.
  std::optional<Pending> TakePending(uint64_t token);
  // Selects a replica (breaker-gated), establishes its hop, arms the attempt
  // deadline, and initiates the transfer. Runs on a scheduler worker for
  // attempt 1 and on the sweeper thread for retries.
  void DispatchAttempt(uint64_t token);
  // Resolves one attempt's failure: terminal (ticket completes) when the
  // status is non-retryable, attempts/budget are spent, or the run's policy
  // is disabled; otherwise the slot re-registers under a fresh token in
  // backoff phase. Evicts the hop when the wire died (`force_evict` for
  // deadline expiry, which always tears the channel down). Unknown tokens
  // no-op.
  void ResolveAttemptFailure(uint64_t token, const Status& status,
                             bool force_evict);
  void SweeperLoop();

  // Shared with every DispatchAsync callback: hops (and their mux clients)
  // may fire completion callbacks after this executor is gone — the runtime
  // destroys the executor before the transports, and a stream the deadline
  // sweeper abandoned can complete arbitrarily late. The guard outlives the
  // executor; the destructor clears `owner` under the mutex, turning late
  // callbacks into no-ops instead of use-after-free.
  struct LifeGuard {
    Mutex mutex;
    DagExecutor* owner RR_GUARDED_BY(mutex) = nullptr;
  };

  core::WorkflowManager* manager_;
  DagScheduler scheduler_;
  const std::shared_ptr<LifeGuard> life_ = std::make_shared<LifeGuard>();

  Mutex mail_mutex_;
  std::map<uint64_t, Pending> pending_ RR_GUARDED_BY(mail_mutex_);
  std::atomic<uint64_t> next_token_{1};
  Nanos remote_deadline_ = std::chrono::seconds(60);
  resilience::ResiliencePolicy policy_;  // default; DagSpec may override

  // The backstop sweeper, started lazily with the first pending transfer.
  // sweep_next_ is the deadline it is currently waiting for: registrations
  // with later deadlines (the common case — deadlines are monotonic) skip
  // the wakeup, so the sweeper scans once per expiry, not once per dispatch.
  CondVar sweep_cv_;
  std::thread sweeper_;
  bool sweeper_stop_ RR_GUARDED_BY(mail_mutex_) = false;
  TimePoint sweep_next_ RR_GUARDED_BY(mail_mutex_) = TimePoint::max();
};

}  // namespace rr::dag
