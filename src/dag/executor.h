// DagExecutor: executes a validated Dag over a WorkflowManager's registry.
//
// Per edge it obtains the placement-selected hop from the shared HopTable
// (the same cached channels chains use) and speaks only the polymorphic Hop
// interface — no transfer-mode switches live here. Fan-out replicates one
// output region to every successor (each over its own hop, concurrently, on
// the scheduler's worker pool); fan-in delivers every predecessor's payload
// into the join function's linear memory, concatenates them in
// edge-declaration order, and invokes the join exactly once.
//
// Functions behind a remote NodeAgent ingress are served by invoke-coupled
// hops: the executor Dispatches one frame (predecessor payloads merged
// host-side for fan-in) stamped with a fresh correlation token, and the
// agent's delivery callback — wire DeliverySink() into
// NodeAgent::RegisterFunction — completes the transfer. Tokens make the
// attribution exact: a completion belonging to a timed-out or cancelled
// transfer matches no pending token and is rejected with kTokenMismatch
// (and its output released), never claimed by a later run.
//
// Execute is reentrant: concurrent executions (api::Runtime keeps many
// invocations in flight) share the worker pool, the hop cache, and the
// delivery mailbox; per-run state lives on the caller's stack.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/node_agent.h"
#include "core/workflow.h"
#include "dag/dag.h"
#include "dag/scheduler.h"
#include "telemetry/metrics.h"

namespace rr::dag {

class DagExecutor {
 public:
  // `manager` must outlive the executor. 0 workers = hardware concurrency.
  explicit DagExecutor(core::WorkflowManager* manager, size_t workers = 0)
      : manager_(manager), scheduler_(workers) {}

  // Runs the DAG: `input` is delivered to every source node; the sink
  // functions' outputs (concatenated in declaration order when there are
  // several sinks) are materialized as the result. Per-edge transfer
  // latencies land in `stats` when non-null. On any node failure the run
  // cancels — downstream nodes never execute — and the first error returns.
  // Safe to call from many threads at once.
  Result<Bytes> Execute(const Dag& dag, ByteSpan input,
                        telemetry::DagRunStats* stats = nullptr);

  // Delivery callback for NodeAgent-registered functions: routes the remote
  // invoke's outcome back into the executor so the DAG can continue past the
  // remote node. The executor must outlive the agent's use of the callback.
  core::NodeAgent::DeliveryCallback DeliverySink();

  // Routes one remote completion to the transfer that dispatched `token`.
  // Returns kTokenMismatch — releasing the outcome's output region — when no
  // transfer is waiting on the token (late completion of a timed-out edge, a
  // cancelled run, or an untracked sender). Exposed for DeliverySink and for
  // protocol tests.
  Status DeliverOutcome(const std::string& function,
                        const core::InvokeOutcome& outcome, uint64_t token);

  // How long a remote (NodeAgent) delivery may take before the edge fails
  // with kDeadlineExceeded. Generous by default: paper-scale payloads cross
  // an emulated 100 Mbps link.
  void set_remote_deadline(Nanos deadline) { remote_deadline_ = deadline; }

  size_t worker_count() const { return scheduler_.worker_count(); }

 private:
  struct NodeRun;
  struct StatsState;

  Status RunNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                 ByteSpan input, StatsState& stats);
  static void ReleaseConsumedPreds(const DagNode& node,
                                   std::vector<NodeRun>& runs);
  Status RunRemoteNode(const Dag& dag, size_t index, std::vector<NodeRun>& runs,
                       core::Hop& hop, StatsState& stats);
  Result<core::InvokeOutcome> WaitForDelivery(const std::string& function,
                                              uint64_t token);

  core::WorkflowManager* manager_;
  DagScheduler scheduler_;

  // Pending invoke-coupled transfers, keyed by correlation token. A slot is
  // registered before its frame is dispatched and erased by the waiter
  // (fulfilled or timed out); completions matching no slot are rejected.
  struct Pending {
    bool fulfilled = false;
    core::InvokeOutcome outcome;
  };
  std::mutex mail_mutex_;
  std::condition_variable mail_cv_;
  std::map<uint64_t, Pending> pending_;
  std::atomic<uint64_t> next_token_{1};
  Nanos remote_deadline_ = std::chrono::seconds(60);
};

}  // namespace rr::dag
