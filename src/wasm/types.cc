#include "wasm/types.h"

#include "common/strings.h"

namespace rr::wasm {

std::string_view ValTypeName(ValType t) {
  switch (t) {
    case ValType::kI32: return "i32";
    case ValType::kI64: return "i64";
    case ValType::kF32: return "f32";
    case ValType::kF64: return "f64";
  }
  return "?";
}

Result<ValType> ValTypeFromByte(uint8_t byte) {
  switch (byte) {
    case 0x7f: return ValType::kI32;
    case 0x7e: return ValType::kI64;
    case 0x7d: return ValType::kF32;
    case 0x7c: return ValType::kF64;
    default:
      return InvalidArgumentError(
          StrFormat("unsupported value type byte 0x%02x", byte));
  }
}

std::string FuncType::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i) out += ", ";
    out += ValTypeName(params[i]);
  }
  out += ") -> (";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i) out += ", ";
    out += ValTypeName(results[i]);
  }
  out += ")";
  return out;
}

std::string Value::ToString() const {
  switch (type) {
    case ValType::kI32: return StrFormat("i32:%d", i32);
    case ValType::kI64: return StrFormat("i64:%lld", static_cast<long long>(i64));
    case ValType::kF32: return StrFormat("f32:%g", static_cast<double>(f32));
    case ValType::kF64: return StrFormat("f64:%g", f64);
  }
  return "?";
}

std::string_view TrapKindName(TrapKind kind) {
  switch (kind) {
    case TrapKind::kUnreachable: return "unreachable";
    case TrapKind::kMemoryOutOfBounds: return "memory access out of bounds";
    case TrapKind::kIntegerDivideByZero: return "integer divide by zero";
    case TrapKind::kIntegerOverflow: return "integer overflow";
    case TrapKind::kInvalidConversion: return "invalid conversion to integer";
    case TrapKind::kStackExhausted: return "call stack exhausted";
    case TrapKind::kFuelExhausted: return "fuel exhausted";
    case TrapKind::kHostError: return "host function error";
  }
  return "unknown trap";
}

Status TrapToStatus(TrapKind kind, std::string detail) {
  std::string message = "wasm trap: ";
  message += TrapKindName(kind);
  if (!detail.empty()) {
    message += " (";
    message += detail;
    message += ")";
  }
  return AbortedError(std::move(message));
}

}  // namespace rr::wasm
