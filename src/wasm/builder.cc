#include "wasm/builder.h"

#include <cassert>
#include <cstring>

namespace rr::wasm {
namespace {

constexpr uint8_t kWasmMagic[4] = {0x00, 0x61, 0x73, 0x6d};
constexpr uint8_t kWasmVersion[4] = {0x01, 0x00, 0x00, 0x00};

enum SectionId : uint8_t {
  kTypeSection = 1,
  kImportSection = 2,
  kFunctionSection = 3,
  kMemorySection = 5,
  kGlobalSection = 6,
  kExportSection = 7,
  kCodeSection = 10,
  kDataSection = 11,
};

void AppendName(Bytes& out, const std::string& name) {
  AppendLebU32(out, static_cast<uint32_t>(name.size()));
  AppendBytes(out, AsBytes(name));
}

void AppendSection(Bytes& out, SectionId id, const Bytes& payload) {
  out.push_back(id);
  AppendLebU32(out, static_cast<uint32_t>(payload.size()));
  AppendBytes(out, payload);
}

void AppendLimits(Bytes& out, const Limits& limits) {
  out.push_back(limits.has_max ? 0x01 : 0x00);
  AppendLebU32(out, limits.min_pages);
  if (limits.has_max) AppendLebU32(out, limits.max_pages);
}

void AppendConstExpr(Bytes& out, const Value& value) {
  switch (value.type) {
    case ValType::kI32:
      out.push_back(static_cast<uint8_t>(Opcode::kI32Const));
      AppendLebS32(out, value.i32);
      break;
    case ValType::kI64:
      out.push_back(static_cast<uint8_t>(Opcode::kI64Const));
      AppendLebS64(out, value.i64);
      break;
    case ValType::kF32: {
      out.push_back(static_cast<uint8_t>(Opcode::kF32Const));
      uint32_t bits;
      std::memcpy(&bits, &value.f32, 4);
      for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(bits >> (8 * i)));
      break;
    }
    case ValType::kF64: {
      out.push_back(static_cast<uint8_t>(Opcode::kF64Const));
      uint64_t bits;
      std::memcpy(&bits, &value.f64, 8);
      for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(bits >> (8 * i)));
      break;
    }
  }
  out.push_back(static_cast<uint8_t>(Opcode::kEnd));
}

// Run-length groups of identical local types, as the binary format requires.
void AppendLocals(Bytes& out, const std::vector<ValType>& locals) {
  std::vector<std::pair<uint32_t, ValType>> groups;
  for (ValType t : locals) {
    if (!groups.empty() && groups.back().second == t) {
      ++groups.back().first;
    } else {
      groups.emplace_back(1, t);
    }
  }
  AppendLebU32(out, static_cast<uint32_t>(groups.size()));
  for (const auto& [count, type] : groups) {
    AppendLebU32(out, count);
    out.push_back(static_cast<uint8_t>(type));
  }
}

}  // namespace

CodeEmitter& CodeEmitter::F32Const(float value) {
  Op(Opcode::kF32Const);
  uint32_t bits;
  std::memcpy(&bits, &value, 4);
  for (int i = 0; i < 4; ++i) code_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
  return *this;
}

CodeEmitter& CodeEmitter::F64Const(double value) {
  Op(Opcode::kF64Const);
  uint64_t bits;
  std::memcpy(&bits, &value, 8);
  for (int i = 0; i < 8; ++i) code_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
  return *this;
}

uint32_t ModuleBuilder::AddType(FuncType type) {
  for (size_t i = 0; i < module_.types.size(); ++i) {
    if (module_.types[i] == type) return static_cast<uint32_t>(i);
  }
  module_.types.push_back(std::move(type));
  return static_cast<uint32_t>(module_.types.size() - 1);
}

uint32_t ModuleBuilder::AddImport(std::string module, std::string name, FuncType type) {
  assert(module_.functions.empty() &&
         "imports must be declared before defined functions");
  const uint32_t type_index = AddType(std::move(type));
  module_.imports.push_back({std::move(module), std::move(name), type_index});
  return static_cast<uint32_t>(module_.imports.size() - 1);
}

uint32_t ModuleBuilder::AddFunction(FuncType type, std::vector<ValType> locals,
                                    const CodeEmitter& emitter) {
  const uint32_t type_index = AddType(std::move(type));
  FunctionBody body;
  body.type_index = type_index;
  body.locals = std::move(locals);
  body.code = emitter.bytes();
  module_.functions.push_back(std::move(body));
  return module_.num_imported_functions() +
         static_cast<uint32_t>(module_.functions.size() - 1);
}

uint32_t ModuleBuilder::AddGlobal(ValType type, bool is_mutable, Value init) {
  module_.globals.push_back({type, is_mutable, init});
  return static_cast<uint32_t>(module_.globals.size() - 1);
}

void ModuleBuilder::ExportFunction(std::string name, uint32_t func_index) {
  module_.exports.push_back({std::move(name), ExportKind::kFunction, func_index});
}

void ModuleBuilder::ExportMemory(std::string name) {
  module_.exports.push_back({std::move(name), ExportKind::kMemory, 0});
}

void ModuleBuilder::AddData(uint32_t offset, Bytes bytes) {
  module_.data.push_back({offset, std::move(bytes)});
}

Bytes ModuleBuilder::Encode() const {
  Bytes out;
  out.insert(out.end(), kWasmMagic, kWasmMagic + 4);
  out.insert(out.end(), kWasmVersion, kWasmVersion + 4);

  if (!module_.types.empty()) {
    Bytes payload;
    AppendLebU32(payload, static_cast<uint32_t>(module_.types.size()));
    for (const FuncType& type : module_.types) {
      payload.push_back(0x60);  // func type tag
      AppendLebU32(payload, static_cast<uint32_t>(type.params.size()));
      for (ValType t : type.params) payload.push_back(static_cast<uint8_t>(t));
      AppendLebU32(payload, static_cast<uint32_t>(type.results.size()));
      for (ValType t : type.results) payload.push_back(static_cast<uint8_t>(t));
    }
    AppendSection(out, kTypeSection, payload);
  }

  if (!module_.imports.empty()) {
    Bytes payload;
    AppendLebU32(payload, static_cast<uint32_t>(module_.imports.size()));
    for (const Import& import : module_.imports) {
      AppendName(payload, import.module);
      AppendName(payload, import.name);
      payload.push_back(0x00);  // function import
      AppendLebU32(payload, import.type_index);
    }
    AppendSection(out, kImportSection, payload);
  }

  if (!module_.functions.empty()) {
    Bytes payload;
    AppendLebU32(payload, static_cast<uint32_t>(module_.functions.size()));
    for (const FunctionBody& body : module_.functions) {
      AppendLebU32(payload, body.type_index);
    }
    AppendSection(out, kFunctionSection, payload);
  }

  if (module_.memory.has_value()) {
    Bytes payload;
    AppendLebU32(payload, 1);
    AppendLimits(payload, *module_.memory);
    AppendSection(out, kMemorySection, payload);
  }

  if (!module_.globals.empty()) {
    Bytes payload;
    AppendLebU32(payload, static_cast<uint32_t>(module_.globals.size()));
    for (const GlobalDef& global : module_.globals) {
      payload.push_back(static_cast<uint8_t>(global.type));
      payload.push_back(global.is_mutable ? 0x01 : 0x00);
      AppendConstExpr(payload, global.init);
    }
    AppendSection(out, kGlobalSection, payload);
  }

  if (!module_.exports.empty()) {
    Bytes payload;
    AppendLebU32(payload, static_cast<uint32_t>(module_.exports.size()));
    for (const Export& e : module_.exports) {
      AppendName(payload, e.name);
      payload.push_back(static_cast<uint8_t>(e.kind));
      AppendLebU32(payload, e.index);
    }
    AppendSection(out, kExportSection, payload);
  }

  if (!module_.functions.empty()) {
    Bytes payload;
    AppendLebU32(payload, static_cast<uint32_t>(module_.functions.size()));
    for (const FunctionBody& body : module_.functions) {
      Bytes entry;
      AppendLocals(entry, body.locals);
      AppendBytes(entry, body.code);
      AppendLebU32(payload, static_cast<uint32_t>(entry.size()));
      AppendBytes(payload, entry);
    }
    AppendSection(out, kCodeSection, payload);
  }

  if (!module_.data.empty()) {
    Bytes payload;
    AppendLebU32(payload, static_cast<uint32_t>(module_.data.size()));
    for (const DataSegment& segment : module_.data) {
      AppendLebU32(payload, 0);  // active, memory 0
      AppendConstExpr(payload, Value::I32(static_cast<int32_t>(segment.offset)));
      AppendLebU32(payload, static_cast<uint32_t>(segment.bytes.size()));
      AppendBytes(payload, segment.bytes);
    }
    AppendSection(out, kDataSection, payload);
  }

  return out;
}

}  // namespace rr::wasm
