// LEB128 variable-length integer coding, as used by the WebAssembly binary
// format (https://webassembly.github.io/spec/core/binary/values.html).
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace rr::wasm {

void AppendLebU32(Bytes& out, uint32_t value);
void AppendLebU64(Bytes& out, uint64_t value);
void AppendLebS32(Bytes& out, int32_t value);
void AppendLebS64(Bytes& out, int64_t value);

// Sequential byte reader with LEB128 decoding. All methods fail with
// kDataLoss on truncation and kInvalidArgument on malformed encodings.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Result<uint8_t> ReadByte();
  Result<uint32_t> ReadLebU32();
  Result<uint64_t> ReadLebU64();
  Result<int32_t> ReadLebS32();
  Result<int64_t> ReadLebS64();
  Result<uint32_t> ReadFixedU32();  // little-endian, for f32 bits
  Result<uint64_t> ReadFixedU64();  // little-endian, for f64 bits
  Result<ByteSpan> ReadSpan(size_t length);

  Status Skip(size_t length);

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace rr::wasm
