#include "wasm/instance.h"

#include "common/strings.h"
#include "wasm/compiler.h"

namespace rr::wasm {

Result<std::unique_ptr<Instance>> Instance::Instantiate(
    Module module, const ImportResolver& imports, InstanceConfig config) {
  RR_ASSIGN_OR_RETURN(auto compiled, CompileModule(module));

  auto instance = std::unique_ptr<Instance>(new Instance());
  instance->config_ = config;
  instance->fuel_ = config.fuel;
  instance->compiled_ = std::move(compiled);

  // Link imports. Deny-by-default: every import must resolve, with an
  // exactly matching signature.
  instance->imported_.reserve(module.imports.size());
  for (const Import& import : module.imports) {
    const HostFunction* host = imports.Lookup(import.module, import.name);
    if (host == nullptr) {
      return NotFoundError("unresolved import " + import.module +
                           "." + import.name);
    }
    if (!(host->type == module.types[import.type_index])) {
      return InvalidArgumentError(
          "import signature mismatch for " + import.module + "." + import.name +
          ": module wants " + module.types[import.type_index].ToString() +
          ", host provides " + host->type.ToString());
    }
    instance->imported_.push_back(*host);
  }

  if (module.memory.has_value()) {
    Limits limits = *module.memory;
    if (config.max_memory_pages.has_value()) {
      limits.has_max = true;
      limits.max_pages = std::min(config.max_memory_pages.value(),
                                  limits.has_max ? limits.max_pages
                                                 : kDefaultMaxPages);
      if (limits.max_pages < limits.min_pages) {
        return InvalidArgumentError("memory limit below module minimum");
      }
    }
    instance->memory_ = std::make_unique<LinearMemory>(limits);
  }

  instance->globals_.reserve(module.globals.size());
  for (const GlobalDef& global : module.globals) {
    instance->globals_.push_back(global.init);
  }

  // Apply active data segments.
  for (const DataSegment& segment : module.data) {
    if (instance->memory_ == nullptr) {
      return InvalidArgumentError("data segment without memory");
    }
    RR_RETURN_IF_ERROR(instance->memory_->Write(segment.offset, segment.bytes));
  }

  instance->native_bodies_.resize(module.functions.size());
  instance->module_ = std::move(module);
  return instance;
}

Result<std::vector<Value>> Instance::Call(uint32_t func_index,
                                          std::span<const Value> args) {
  const FuncType* type = module_.function_type(func_index);
  if (type == nullptr) {
    return InvalidArgumentError("function index out of range");
  }
  if (args.size() != type->params.size()) {
    return InvalidArgumentError(StrFormat(
        "argument count mismatch: got %zu, want %zu", args.size(),
        type->params.size()));
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].type != type->params[i]) {
      return InvalidArgumentError(StrFormat("argument %zu type mismatch", i));
    }
  }

  std::vector<Value> results(type->results.size());
  for (size_t i = 0; i < results.size(); ++i) results[i].type = type->results[i];

  if (func_index < module_.num_imported_functions()) {
    ++host_calls_;
    RR_RETURN_IF_ERROR(imported_[func_index].fn(*this, args, results));
    return results;
  }

  const uint32_t defined = func_index - module_.num_imported_functions();
  if (native_bodies_[defined]) {
    RR_RETURN_IF_ERROR(native_bodies_[defined](*this, args, results));
    return results;
  }
  RR_RETURN_IF_ERROR(Invoke(defined, args, results));
  return results;
}

Result<std::vector<Value>> Instance::CallExport(std::string_view name,
                                                std::span<const Value> args) {
  const Export* e = module_.FindExport(name, ExportKind::kFunction);
  if (e == nullptr) {
    return NotFoundError("no exported function named " + std::string(name));
  }
  return Call(e->index, args);
}

Status Instance::RegisterNativeBody(std::string_view export_name, NativeBody body) {
  const Export* e = module_.FindExport(export_name, ExportKind::kFunction);
  if (e == nullptr) {
    return NotFoundError("no exported function named " + std::string(export_name));
  }
  if (e->index < module_.num_imported_functions()) {
    return InvalidArgumentError("cannot override an imported function");
  }
  native_bodies_[e->index - module_.num_imported_functions()] = std::move(body);
  return Status::Ok();
}

}  // namespace rr::wasm
