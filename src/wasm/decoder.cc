#include "wasm/decoder.h"

#include <cstring>

#include "common/strings.h"
#include "wasm/leb128.h"
#include "wasm/opcodes.h"

namespace rr::wasm {
namespace {

Result<std::string> ReadName(ByteReader& reader) {
  RR_ASSIGN_OR_RETURN(const uint32_t length, reader.ReadLebU32());
  RR_ASSIGN_OR_RETURN(const ByteSpan span, reader.ReadSpan(length));
  return std::string(AsStringView(span));
}

Result<Limits> ReadLimits(ByteReader& reader) {
  RR_ASSIGN_OR_RETURN(const uint8_t flags, reader.ReadByte());
  if (flags > 1) return InvalidArgumentError("unsupported limits flags");
  Limits limits;
  RR_ASSIGN_OR_RETURN(limits.min_pages, reader.ReadLebU32());
  if (flags == 1) {
    limits.has_max = true;
    RR_ASSIGN_OR_RETURN(limits.max_pages, reader.ReadLebU32());
    if (limits.max_pages < limits.min_pages) {
      return InvalidArgumentError("memory max < min");
    }
  }
  return limits;
}

// Constant initializer expression: a single const instruction plus `end`.
Result<Value> ReadConstExpr(ByteReader& reader) {
  RR_ASSIGN_OR_RETURN(const uint8_t op, reader.ReadByte());
  Value value;
  switch (static_cast<Opcode>(op)) {
    case Opcode::kI32Const: {
      RR_ASSIGN_OR_RETURN(const int32_t v, reader.ReadLebS32());
      value = Value::I32(v);
      break;
    }
    case Opcode::kI64Const: {
      RR_ASSIGN_OR_RETURN(const int64_t v, reader.ReadLebS64());
      value = Value::I64(v);
      break;
    }
    case Opcode::kF32Const: {
      RR_ASSIGN_OR_RETURN(const uint32_t bits, reader.ReadFixedU32());
      float f;
      std::memcpy(&f, &bits, 4);
      value = Value::F32(f);
      break;
    }
    case Opcode::kF64Const: {
      RR_ASSIGN_OR_RETURN(const uint64_t bits, reader.ReadFixedU64());
      double d;
      std::memcpy(&d, &bits, 8);
      value = Value::F64(d);
      break;
    }
    default:
      return InvalidArgumentError(
          StrFormat("unsupported const-expr opcode 0x%02x", op));
  }
  RR_ASSIGN_OR_RETURN(const uint8_t end, reader.ReadByte());
  if (static_cast<Opcode>(end) != Opcode::kEnd) {
    return InvalidArgumentError("const expr not terminated by end");
  }
  return value;
}

Status DecodeTypeSection(ByteReader& reader, Module& module) {
  RR_ASSIGN_OR_RETURN(const uint32_t count, reader.ReadLebU32());
  module.types.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RR_ASSIGN_OR_RETURN(const uint8_t tag, reader.ReadByte());
    if (tag != 0x60) return InvalidArgumentError("expected func type tag 0x60");
    FuncType type;
    RR_ASSIGN_OR_RETURN(const uint32_t num_params, reader.ReadLebU32());
    for (uint32_t p = 0; p < num_params; ++p) {
      RR_ASSIGN_OR_RETURN(const uint8_t byte, reader.ReadByte());
      RR_ASSIGN_OR_RETURN(const ValType vt, ValTypeFromByte(byte));
      type.params.push_back(vt);
    }
    RR_ASSIGN_OR_RETURN(const uint32_t num_results, reader.ReadLebU32());
    if (num_results > 1) {
      return UnimplementedError("multi-value results not supported");
    }
    for (uint32_t r = 0; r < num_results; ++r) {
      RR_ASSIGN_OR_RETURN(const uint8_t byte, reader.ReadByte());
      RR_ASSIGN_OR_RETURN(const ValType vt, ValTypeFromByte(byte));
      type.results.push_back(vt);
    }
    module.types.push_back(std::move(type));
  }
  return Status::Ok();
}

Status DecodeImportSection(ByteReader& reader, Module& module) {
  RR_ASSIGN_OR_RETURN(const uint32_t count, reader.ReadLebU32());
  for (uint32_t i = 0; i < count; ++i) {
    Import import;
    RR_ASSIGN_OR_RETURN(import.module, ReadName(reader));
    RR_ASSIGN_OR_RETURN(import.name, ReadName(reader));
    RR_ASSIGN_OR_RETURN(const uint8_t kind, reader.ReadByte());
    if (kind != 0x00) {
      return UnimplementedError("only function imports are supported");
    }
    RR_ASSIGN_OR_RETURN(import.type_index, reader.ReadLebU32());
    if (import.type_index >= module.types.size()) {
      return InvalidArgumentError("import type index out of range");
    }
    module.imports.push_back(std::move(import));
  }
  return Status::Ok();
}

Status DecodeFunctionSection(ByteReader& reader, Module& module,
                             std::vector<uint32_t>& type_indices) {
  RR_ASSIGN_OR_RETURN(const uint32_t count, reader.ReadLebU32());
  type_indices.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RR_ASSIGN_OR_RETURN(const uint32_t type_index, reader.ReadLebU32());
    if (type_index >= module.types.size()) {
      return InvalidArgumentError("function type index out of range");
    }
    type_indices.push_back(type_index);
  }
  return Status::Ok();
}

Status DecodeMemorySection(ByteReader& reader, Module& module) {
  RR_ASSIGN_OR_RETURN(const uint32_t count, reader.ReadLebU32());
  if (count > 1) return UnimplementedError("at most one memory supported");
  if (count == 1) {
    RR_ASSIGN_OR_RETURN(module.memory, ReadLimits(reader));
  }
  return Status::Ok();
}

Status DecodeGlobalSection(ByteReader& reader, Module& module) {
  RR_ASSIGN_OR_RETURN(const uint32_t count, reader.ReadLebU32());
  for (uint32_t i = 0; i < count; ++i) {
    GlobalDef global;
    RR_ASSIGN_OR_RETURN(const uint8_t type_byte, reader.ReadByte());
    RR_ASSIGN_OR_RETURN(global.type, ValTypeFromByte(type_byte));
    RR_ASSIGN_OR_RETURN(const uint8_t mut, reader.ReadByte());
    if (mut > 1) return InvalidArgumentError("bad global mutability flag");
    global.is_mutable = mut == 1;
    RR_ASSIGN_OR_RETURN(global.init, ReadConstExpr(reader));
    if (global.init.type != global.type) {
      return InvalidArgumentError("global initializer type mismatch");
    }
    module.globals.push_back(global);
  }
  return Status::Ok();
}

Status DecodeExportSection(ByteReader& reader, Module& module) {
  RR_ASSIGN_OR_RETURN(const uint32_t count, reader.ReadLebU32());
  for (uint32_t i = 0; i < count; ++i) {
    Export e;
    RR_ASSIGN_OR_RETURN(e.name, ReadName(reader));
    RR_ASSIGN_OR_RETURN(const uint8_t kind, reader.ReadByte());
    RR_ASSIGN_OR_RETURN(e.index, reader.ReadLebU32());
    switch (kind) {
      case 0x00:
        e.kind = ExportKind::kFunction;
        break;
      case 0x02:
        e.kind = ExportKind::kMemory;
        break;
      default:
        return UnimplementedError(
            StrFormat("unsupported export kind 0x%02x", kind));
    }
    module.exports.push_back(std::move(e));
  }
  return Status::Ok();
}

Status DecodeCodeSection(ByteReader& reader, Module& module,
                         const std::vector<uint32_t>& type_indices) {
  RR_ASSIGN_OR_RETURN(const uint32_t count, reader.ReadLebU32());
  if (count != type_indices.size()) {
    return InvalidArgumentError("code section count != function section count");
  }
  module.functions.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RR_ASSIGN_OR_RETURN(const uint32_t body_size, reader.ReadLebU32());
    RR_ASSIGN_OR_RETURN(const ByteSpan body_span, reader.ReadSpan(body_size));
    ByteReader body(body_span);

    FunctionBody function;
    function.type_index = type_indices[i];

    RR_ASSIGN_OR_RETURN(const uint32_t num_groups, body.ReadLebU32());
    for (uint32_t g = 0; g < num_groups; ++g) {
      RR_ASSIGN_OR_RETURN(const uint32_t group_count, body.ReadLebU32());
      RR_ASSIGN_OR_RETURN(const uint8_t type_byte, body.ReadByte());
      RR_ASSIGN_OR_RETURN(const ValType vt, ValTypeFromByte(type_byte));
      if (function.locals.size() + group_count > 50000) {
        return ResourceExhaustedError("too many locals");
      }
      function.locals.insert(function.locals.end(), group_count, vt);
    }

    RR_ASSIGN_OR_RETURN(const ByteSpan code, body.ReadSpan(body.remaining()));
    function.code.assign(code.begin(), code.end());
    if (function.code.empty() ||
        function.code.back() != static_cast<uint8_t>(Opcode::kEnd)) {
      return InvalidArgumentError("function body must end with `end`");
    }
    module.functions.push_back(std::move(function));
  }
  return Status::Ok();
}

Status DecodeDataSection(ByteReader& reader, Module& module) {
  RR_ASSIGN_OR_RETURN(const uint32_t count, reader.ReadLebU32());
  for (uint32_t i = 0; i < count; ++i) {
    RR_ASSIGN_OR_RETURN(const uint32_t flags, reader.ReadLebU32());
    if (flags != 0) {
      return UnimplementedError("only active data segments in memory 0");
    }
    DataSegment segment;
    RR_ASSIGN_OR_RETURN(const Value offset, ReadConstExpr(reader));
    if (offset.type != ValType::kI32) {
      return InvalidArgumentError("data offset must be i32");
    }
    segment.offset = offset.AsU32();
    RR_ASSIGN_OR_RETURN(const uint32_t length, reader.ReadLebU32());
    RR_ASSIGN_OR_RETURN(const ByteSpan bytes, reader.ReadSpan(length));
    segment.bytes.assign(bytes.begin(), bytes.end());
    module.data.push_back(std::move(segment));
  }
  return Status::Ok();
}

}  // namespace

Result<Module> DecodeModule(ByteSpan binary) {
  ByteReader reader(binary);

  RR_ASSIGN_OR_RETURN(const ByteSpan magic, reader.ReadSpan(4));
  static constexpr uint8_t kMagic[4] = {0x00, 0x61, 0x73, 0x6d};
  if (std::memcmp(magic.data(), kMagic, 4) != 0) {
    return InvalidArgumentError("not a wasm binary (bad magic)");
  }
  RR_ASSIGN_OR_RETURN(const uint32_t version, reader.ReadFixedU32());
  if (version != 1) {
    return UnimplementedError(StrFormat("unsupported wasm version %u", version));
  }

  Module module;
  std::vector<uint32_t> function_type_indices;
  int last_section = 0;

  while (!reader.AtEnd()) {
    RR_ASSIGN_OR_RETURN(const uint8_t section_id, reader.ReadByte());
    RR_ASSIGN_OR_RETURN(const uint32_t section_size, reader.ReadLebU32());
    RR_ASSIGN_OR_RETURN(const ByteSpan payload, reader.ReadSpan(section_size));

    if (section_id == 0) continue;  // custom section: skip

    if (section_id <= last_section) {
      return InvalidArgumentError("sections out of order or duplicated");
    }
    last_section = section_id;

    ByteReader section(payload);
    Status status;
    switch (section_id) {
      case 1: status = DecodeTypeSection(section, module); break;
      case 2: status = DecodeImportSection(section, module); break;
      case 3: status = DecodeFunctionSection(section, module, function_type_indices); break;
      case 5: status = DecodeMemorySection(section, module); break;
      case 6: status = DecodeGlobalSection(section, module); break;
      case 7: status = DecodeExportSection(section, module); break;
      case 10: status = DecodeCodeSection(section, module, function_type_indices); break;
      case 11: status = DecodeDataSection(section, module); break;
      case 4:   // table
      case 8:   // start
      case 9:   // element
        return UnimplementedError(
            StrFormat("unsupported section id %u", section_id));
      default:
        return InvalidArgumentError(StrFormat("unknown section id %u", section_id));
    }
    RR_RETURN_IF_ERROR(status);
    if (!section.AtEnd()) {
      return InvalidArgumentError(
          StrFormat("trailing bytes in section %u", section_id));
    }
  }

  if (module.functions.size() != function_type_indices.size()) {
    return InvalidArgumentError("function section without matching code section");
  }

  // Validate export indices.
  for (const Export& e : module.exports) {
    if (e.kind == ExportKind::kFunction && e.index >= module.num_functions()) {
      return InvalidArgumentError("export function index out of range: " + e.name);
    }
    if (e.kind == ExportKind::kMemory && !module.memory.has_value()) {
      return InvalidArgumentError("memory export without memory: " + e.name);
    }
  }
  return module;
}

}  // namespace rr::wasm
