#include "wasm/guest_alloc.h"

#include <algorithm>

namespace rr::wasm {
namespace {

uint32_t AlignUp(uint32_t v, uint32_t alignment) {
  return (v + alignment - 1) & ~(alignment - 1);
}

}  // namespace

GuestAllocator::GuestAllocator(LinearMemory* memory, uint32_t heap_base)
    : memory_(memory),
      heap_base_(AlignUp(heap_base, kAlign)),
      heap_end_(heap_base_) {}

Result<uint32_t> GuestAllocator::ReadSize(uint32_t header) const {
  return memory_->Load<uint32_t>(header);
}

Result<uint32_t> GuestAllocator::ReadTag(uint32_t header) const {
  return memory_->Load<uint32_t>(header + 4);
}

Status GuestAllocator::WriteHeader(uint32_t header, uint32_t size, uint32_t tag) {
  RR_RETURN_IF_ERROR(memory_->Store<uint32_t>(header, size));
  return memory_->Store<uint32_t>(header + 4, tag);
}

Result<uint32_t> GuestAllocator::ReadNext(uint32_t header) const {
  return memory_->Load<uint32_t>(header + kHeaderSize);
}

Status GuestAllocator::WriteNext(uint32_t header, uint32_t next) {
  return memory_->Store<uint32_t>(header + kHeaderSize, next);
}

Status GuestAllocator::GrowHeap(uint32_t min_extra_bytes) {
  const uint32_t needed = AlignUp(min_extra_bytes, kWasmPageSize);
  uint32_t delta_pages = needed / kWasmPageSize;

  // Claim any memory that already exists past heap_end_ first.
  const uint64_t existing_slack = memory_->byte_size() - heap_end_;
  if (existing_slack >= min_extra_bytes) {
    delta_pages = 0;
  } else if (memory_->Grow(delta_pages) < 0) {
    return ResourceExhaustedError("guest heap: memory.grow refused");
  }

  const uint32_t block = heap_end_;
  const uint32_t new_end = static_cast<uint32_t>(memory_->byte_size());
  const uint32_t payload = new_end - block - kHeaderSize;
  heap_end_ = new_end;
  RR_RETURN_IF_ERROR(WriteHeader(block, payload, kFreeTag));
  return InsertFree(block);
}

Status GuestAllocator::InsertFree(uint32_t header) {
  // Address-ordered insert, coalescing with predecessor and successor.
  uint32_t prev = kNull;
  uint32_t current = free_head_;
  while (current != kNull && current < header) {
    prev = current;
    RR_ASSIGN_OR_RETURN(current, ReadNext(current));
  }

  RR_ASSIGN_OR_RETURN(uint32_t size, ReadSize(header));

  // Coalesce with successor.
  if (current != kNull && header + kHeaderSize + size == current) {
    RR_ASSIGN_OR_RETURN(const uint32_t next_size, ReadSize(current));
    RR_ASSIGN_OR_RETURN(const uint32_t next_next, ReadNext(current));
    size += kHeaderSize + next_size;
    current = next_next;
  }

  // Coalesce with predecessor.
  if (prev != kNull) {
    RR_ASSIGN_OR_RETURN(const uint32_t prev_size, ReadSize(prev));
    if (prev + kHeaderSize + prev_size == header) {
      const uint32_t merged = prev_size + kHeaderSize + size;
      RR_RETURN_IF_ERROR(WriteHeader(prev, merged, kFreeTag));
      return WriteNext(prev, current);
    }
  }

  RR_RETURN_IF_ERROR(WriteHeader(header, size, kFreeTag));
  RR_RETURN_IF_ERROR(WriteNext(header, current));
  if (prev == kNull) {
    free_head_ = header;
  } else {
    RR_RETURN_IF_ERROR(WriteNext(prev, header));
  }
  return Status::Ok();
}

Result<uint32_t> GuestAllocator::Allocate(uint32_t size) {
  if (size == 0) return InvalidArgumentError("guest allocation of 0 bytes");
  const uint32_t want = std::max(AlignUp(size, kAlign), kMinPayload);

  for (int attempt = 0; attempt < 2; ++attempt) {
    // First fit.
    uint32_t prev = kNull;
    uint32_t current = free_head_;
    while (current != kNull) {
      RR_ASSIGN_OR_RETURN(const uint32_t block_size, ReadSize(current));
      RR_ASSIGN_OR_RETURN(const uint32_t next, ReadNext(current));
      if (block_size >= want) {
        uint32_t remainder = block_size - want;
        uint32_t replacement = next;
        if (remainder >= kHeaderSize + kMinPayload) {
          // Split: tail becomes a new free block.
          const uint32_t tail = current + kHeaderSize + want;
          RR_RETURN_IF_ERROR(
              WriteHeader(tail, remainder - kHeaderSize, kFreeTag));
          RR_RETURN_IF_ERROR(WriteNext(tail, next));
          replacement = tail;
          RR_RETURN_IF_ERROR(WriteHeader(current, want, kAllocatedTag));
        } else {
          RR_RETURN_IF_ERROR(WriteHeader(current, block_size, kAllocatedTag));
        }
        if (prev == kNull) {
          free_head_ = replacement;
        } else {
          RR_RETURN_IF_ERROR(WriteNext(prev, replacement));
        }
        RR_ASSIGN_OR_RETURN(const uint32_t final_size, ReadSize(current));
        bytes_in_use_ += final_size;
        ++live_allocations_;
        return current + kHeaderSize;
      }
      prev = current;
      current = next;
    }
    RR_RETURN_IF_ERROR(GrowHeap(want + kHeaderSize));
  }
  return ResourceExhaustedError("guest heap exhausted");
}

Status GuestAllocator::Deallocate(uint32_t address) {
  if (address < heap_base_ + kHeaderSize) {
    return InvalidArgumentError("deallocate: address below heap");
  }
  const uint32_t header = address - kHeaderSize;
  RR_ASSIGN_OR_RETURN(const uint32_t tag, ReadTag(header));
  if (tag != kAllocatedTag) {
    return InvalidArgumentError(
        tag == kFreeTag ? "double free of guest block"
                        : "deallocate: not an allocated block");
  }
  RR_ASSIGN_OR_RETURN(const uint32_t size, ReadSize(header));
  bytes_in_use_ -= size;
  --live_allocations_;
  return InsertFree(header);
}

}  // namespace rr::wasm
