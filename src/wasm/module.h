// In-memory representation of a decoded WebAssembly module.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "wasm/types.h"

namespace rr::wasm {

enum class ExportKind : uint8_t {
  kFunction = 0x00,
  kMemory = 0x02,
};

// Only function imports are supported (the WASI surface is functions-only).
struct Import {
  std::string module;
  std::string name;
  uint32_t type_index = 0;
};

struct Export {
  std::string name;
  ExportKind kind = ExportKind::kFunction;
  uint32_t index = 0;
};

struct GlobalDef {
  ValType type = ValType::kI32;
  bool is_mutable = false;
  Value init;
};

// Active data segment copied into linear memory at instantiation.
struct DataSegment {
  uint32_t offset = 0;
  Bytes bytes;
};

struct FunctionBody {
  uint32_t type_index = 0;
  // Expanded list: one entry per local (not run-length groups).
  std::vector<ValType> locals;
  // Body expression bytes, including the terminating `end` opcode.
  Bytes code;
};

struct Module {
  std::vector<FuncType> types;
  std::vector<Import> imports;        // function index space [0, imports.size())
  std::vector<FunctionBody> functions;  // function index space continues here
  std::optional<Limits> memory;
  std::vector<GlobalDef> globals;
  std::vector<Export> exports;
  std::vector<DataSegment> data;

  uint32_t num_imported_functions() const {
    return static_cast<uint32_t>(imports.size());
  }
  uint32_t num_functions() const {
    return num_imported_functions() + static_cast<uint32_t>(functions.size());
  }

  // Type of any function in the combined index space; nullptr if out of range.
  const FuncType* function_type(uint32_t func_index) const {
    uint32_t type_index;
    if (func_index < imports.size()) {
      type_index = imports[func_index].type_index;
    } else if (func_index < num_functions()) {
      type_index = functions[func_index - imports.size()].type_index;
    } else {
      return nullptr;
    }
    return type_index < types.size() ? &types[type_index] : nullptr;
  }

  const Export* FindExport(std::string_view name, ExportKind kind) const {
    for (const Export& e : exports) {
      if (e.kind == kind && e.name == name) return &e;
    }
    return nullptr;
  }
};

}  // namespace rr::wasm
