// Decodes the WebAssembly binary format into the Module IR.
//
// Supports the sections the builder emits (type, import, function, memory,
// global, export, code, data) plus skipping custom sections. Unknown or
// unsupported constructs are rejected with descriptive errors — decode never
// silently degrades, matching Wasm's fail-closed philosophy.
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "wasm/module.h"

namespace rr::wasm {

Result<Module> DecodeModule(ByteSpan binary);

}  // namespace rr::wasm
