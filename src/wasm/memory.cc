#include "wasm/memory.h"

#include <cstring>

namespace rr::wasm {

LinearMemory::LinearMemory(Limits limits) : limits_(limits), pages_(limits.min_pages) {
  if (!limits_.has_max || limits_.max_pages > kDefaultMaxPages) {
    limits_.has_max = true;
    limits_.max_pages = kDefaultMaxPages;
  }
  bytes_.resize(byte_size());
}

int32_t LinearMemory::Grow(uint32_t delta_pages) {
  const uint64_t target = static_cast<uint64_t>(pages_) + delta_pages;
  if (target > limits_.max_pages) return -1;
  const uint32_t old_pages = pages_;
  pages_ = static_cast<uint32_t>(target);
  bytes_.resize(byte_size());
  return static_cast<int32_t>(old_pages);
}

Status LinearMemory::Read(uint64_t addr, MutableByteSpan out) const {
  if (!InBounds(addr, out.size())) {
    return TrapToStatus(TrapKind::kMemoryOutOfBounds,
                        "host read [" + std::to_string(addr) + ", +" +
                            std::to_string(out.size()) + ")");
  }
  // memcpy requires non-null pointers even for n=0, and an empty span's
  // data() is null (zero-length payloads are legal on the data plane).
  if (!out.empty()) std::memcpy(out.data(), bytes_.data() + addr, out.size());
  host_bytes_read_.fetch_add(out.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status LinearMemory::Write(uint64_t addr, ByteSpan data) {
  if (!InBounds(addr, data.size())) {
    return TrapToStatus(TrapKind::kMemoryOutOfBounds,
                        "host write [" + std::to_string(addr) + ", +" +
                            std::to_string(data.size()) + ")");
  }
  if (!data.empty()) std::memcpy(bytes_.data() + addr, data.data(), data.size());
  host_bytes_written_.fetch_add(data.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Result<ByteSpan> LinearMemory::Slice(uint64_t addr, uint64_t len) const {
  if (!InBounds(addr, len)) {
    return TrapToStatus(TrapKind::kMemoryOutOfBounds,
                        "slice [" + std::to_string(addr) + ", +" +
                            std::to_string(len) + ")");
  }
  return ByteSpan(bytes_.data() + addr, len);
}

Result<MutableByteSpan> LinearMemory::MutableSlice(uint64_t addr, uint64_t len) {
  if (!InBounds(addr, len)) {
    return TrapToStatus(TrapKind::kMemoryOutOfBounds,
                        "mutable slice [" + std::to_string(addr) + ", +" +
                            std::to_string(len) + ")");
  }
  return MutableByteSpan(bytes_.data() + addr, len);
}

Status LinearMemory::Copy(uint64_t dst, uint64_t src, uint64_t len) {
  if (!InBounds(dst, len) || !InBounds(src, len)) {
    return TrapToStatus(TrapKind::kMemoryOutOfBounds, "memory.copy");
  }
  std::memmove(bytes_.data() + dst, bytes_.data() + src, len);
  return Status::Ok();
}

Status LinearMemory::Fill(uint64_t dst, uint8_t value, uint64_t len) {
  if (!InBounds(dst, len)) {
    return TrapToStatus(TrapKind::kMemoryOutOfBounds, "memory.fill");
  }
  std::memset(bytes_.data() + dst, value, len);
  return Status::Ok();
}

}  // namespace rr::wasm
