// Guest heap allocator backing Table 1's `allocate_memory` / and
// `deallocate_memory` APIs.
//
// In the paper, these are functions exported by the Wasm module (compiled
// from Rust's allocator). Here the allocator's *state lives entirely inside
// guest linear memory* — block headers and free-list links are guest bytes —
// so the memory layout matches what a guest-side allocator would produce,
// while the bookkeeping logic runs in the host (an AOT-simulated export; see
// DESIGN.md "Substitutions").
//
// Layout: 8-byte headers [size:u32][tag:u32] precede every block. Free
// blocks form an address-ordered singly-linked list whose `next` pointer is
// stored in the first 4 bytes of the block's payload. Adjacent free blocks
// coalesce on deallocation. First-fit with block splitting.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "wasm/memory.h"

namespace rr::wasm {

class GuestAllocator {
 public:
  // Manages [heap_base, end-of-memory). heap_base is rounded up to 8 bytes.
  // The region below heap_base is left to the module's statics/stack.
  GuestAllocator(LinearMemory* memory, uint32_t heap_base);

  GuestAllocator(const GuestAllocator&) = delete;
  GuestAllocator& operator=(const GuestAllocator&) = delete;

  // Allocates `size` bytes of guest memory; returns the payload address.
  // Grows linear memory (in whole pages) when the free list has no fit.
  Result<uint32_t> Allocate(uint32_t size);

  // Frees a previously allocated block. Rejects addresses that were never
  // returned by Allocate (tag check) — the bounds/ownership validation the
  // paper's shim performs before memory operations (§3.1).
  Status Deallocate(uint32_t address);

  uint32_t heap_base() const { return heap_base_; }
  uint64_t bytes_in_use() const { return bytes_in_use_; }
  uint64_t live_allocations() const { return live_allocations_; }

 private:
  static constexpr uint32_t kHeaderSize = 8;
  static constexpr uint32_t kAlign = 8;
  static constexpr uint32_t kMinPayload = 8;  // room for the free-list link
  static constexpr uint32_t kAllocatedTag = 0xa110c8ed;
  static constexpr uint32_t kFreeTag = 0xf2eeb10c;
  static constexpr uint32_t kNull = 0;

  // Header accessors (operate on guest memory).
  Result<uint32_t> ReadSize(uint32_t header) const;
  Result<uint32_t> ReadTag(uint32_t header) const;
  Status WriteHeader(uint32_t header, uint32_t size, uint32_t tag);
  Result<uint32_t> ReadNext(uint32_t header) const;
  Status WriteNext(uint32_t header, uint32_t next);

  Status GrowHeap(uint32_t min_extra_bytes);
  Status InsertFree(uint32_t header);

  LinearMemory* memory_;
  uint32_t heap_base_;
  uint32_t heap_end_;        // exclusive; tracks how much memory we formatted
  uint32_t free_head_ = kNull;
  uint64_t bytes_in_use_ = 0;
  uint64_t live_allocations_ = 0;
};

}  // namespace rr::wasm
