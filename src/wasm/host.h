// Host-function (import) interface — the runtime's equivalent of WasmEdge's
// host function registration. Wasm follows deny-by-default: a module can only
// reach host functionality that was explicitly registered here.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>

#include "common/status.h"
#include "wasm/types.h"

namespace rr::wasm {

class Instance;

// A host (native) function callable from guest code. `results` is pre-sized
// to the declared result count; the callee must fill every slot.
using HostFn = std::function<Status(Instance& instance,
                                    std::span<const Value> args,
                                    std::span<Value> results)>;

struct HostFunction {
  FuncType type;
  HostFn fn;
};

// Resolves (module, name) import pairs at instantiation time.
class ImportResolver {
 public:
  void Register(std::string module, std::string name, FuncType type, HostFn fn) {
    functions_[Key{std::move(module), std::move(name)}] =
        HostFunction{std::move(type), std::move(fn)};
  }

  const HostFunction* Lookup(const std::string& module,
                             const std::string& name) const {
    const auto it = functions_.find(Key{module, name});
    return it == functions_.end() ? nullptr : &it->second;
  }

  size_t size() const { return functions_.size(); }

 private:
  using Key = std::pair<std::string, std::string>;
  std::map<Key, HostFunction> functions_;
};

}  // namespace rr::wasm
