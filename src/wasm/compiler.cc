#include "wasm/compiler.h"

#include <optional>

#include "common/strings.h"
#include "wasm/leb128.h"

namespace rr::wasm {
namespace {

// Validation-time control frame.
struct Frame {
  enum class Kind { kFunc, kBlock, kLoop, kIf };
  Kind kind;
  std::optional<ValType> result;  // at most one result (MVP)
  size_t height;                  // operand stack height at entry
  bool unreachable = false;
  size_t start_pc = 0;                 // loop branch target
  std::vector<size_t> branch_fixups;   // CInstr indices jumping to this end
  size_t else_fixup = SIZE_MAX;        // pending kJumpUnless of an `if`
  bool saw_else = false;
};

class FunctionCompiler {
 public:
  FunctionCompiler(const Module& module, uint32_t defined_index)
      : module_(module),
        body_(module.functions[defined_index]),
        func_type_(module.types[body_.type_index]),
        reader_(body_.code) {}

  Result<CompiledFunction> Compile();

 private:
  using Kind = Frame::Kind;

  Status Error(const std::string& message) const {
    return InvalidArgumentError(
        StrFormat("wasm validation: %s (at body offset %zu)", message.c_str(),
                  reader_.position()));
  }

  // --- operand stack -------------------------------------------------------
  void Push(ValType t) {
    stack_.push_back(t);
    max_stack_ = std::max(max_stack_, stack_.size());
  }

  // Pops any value; returns nullopt in polymorphic (unreachable) state.
  Result<std::optional<ValType>> PopAny() {
    Frame& frame = frames_.back();
    if (stack_.size() == frame.height) {
      if (frame.unreachable) return std::optional<ValType>();
      return Error("operand stack underflow");
    }
    const ValType t = stack_.back();
    stack_.pop_back();
    return std::optional<ValType>(t);
  }

  Status PopExpect(ValType expected) {
    RR_ASSIGN_OR_RETURN(const std::optional<ValType> actual, PopAny());
    if (actual.has_value() && *actual != expected) {
      return Error(StrFormat("type mismatch: expected %s, found %s",
                             std::string(ValTypeName(expected)).c_str(),
                             std::string(ValTypeName(*actual)).c_str()));
    }
    return Status::Ok();
  }

  void MarkUnreachable() {
    Frame& frame = frames_.back();
    stack_.resize(frame.height);
    frame.unreachable = true;
  }

  // --- control -------------------------------------------------------------
  Result<std::optional<ValType>> ReadBlockType() {
    RR_ASSIGN_OR_RETURN(const uint8_t byte, reader_.ReadByte());
    if (byte == kVoidBlockType) return std::optional<ValType>();
    RR_ASSIGN_OR_RETURN(const ValType vt, ValTypeFromByte(byte));
    return std::optional<ValType>(vt);
  }

  Result<Frame*> FrameAt(uint32_t depth) {
    if (depth >= frames_.size()) return Error("branch depth out of range");
    return &frames_[frames_.size() - 1 - depth];
  }

  // Label arity: loops have zero-arity labels (branch = continue), all
  // others carry the block result.
  static uint32_t LabelArity(const Frame& frame) {
    if (frame.kind == Kind::kLoop) return 0;
    return frame.result.has_value() ? 1 : 0;
  }

  // Validates that a branch to `frame` is well-typed at the current stack,
  // and computes the runtime drop count.
  Result<uint32_t> CheckBranch(Frame& frame) {
    const uint32_t arity = LabelArity(frame);
    const Frame& current = frames_.back();
    // Values carried by the branch must be on the stack (unless polymorphic).
    if (stack_.size() < frame.height + arity) {
      if (!current.unreachable) return Error("branch carries missing values");
      return 0;
    }
    if (arity == 1) {
      const ValType top = stack_.back();
      if (top != *frame.result && frame.kind != Kind::kLoop) {
        return Error("branch value type mismatch");
      }
    }
    return static_cast<uint32_t>(stack_.size() - frame.height - arity);
  }

  void EmitBranchTo(Frame& frame, COp op, uint32_t drop) {
    const uint32_t arity = LabelArity(frame);
    CInstr instr{op, 0, drop, arity};
    if (frame.kind == Kind::kLoop) {
      instr.a = static_cast<uint32_t>(frame.start_pc);
      code_.push_back(instr);
    } else {
      frame.branch_fixups.push_back(code_.size());
      code_.push_back(instr);  // target patched at `end`
    }
  }

  Status HandleEnd();
  Status HandleElse();
  Status HandleBranch(COp op);
  Status HandleBrTable();
  Status HandleCall();
  Status HandleMemOp(Opcode op);
  Status HandleMisc();
  Status HandlePlain(Opcode op);

  Status CheckMemoryPresent() {
    if (!module_.memory.has_value()) return Error("memory instruction without memory");
    return Status::Ok();
  }

  const Module& module_;
  const FunctionBody& body_;
  const FuncType& func_type_;
  ByteReader reader_;

  std::vector<ValType> stack_;
  std::vector<Frame> frames_;
  std::vector<CInstr> code_;
  std::vector<BrTableEntry> br_pool_;
  std::vector<ValType> local_types_;  // params + locals
  size_t max_stack_ = 0;
  bool done_ = false;
};

Status FunctionCompiler::HandleEnd() {
  Frame& frame = frames_.back();
  const uint32_t arity = frame.result.has_value() ? 1 : 0;

  if (!frame.unreachable) {
    if (stack_.size() != frame.height + arity) {
      return Error(StrFormat("block ends with wrong stack height: %zu vs %zu",
                             stack_.size(), frame.height + arity));
    }
    if (arity == 1 && stack_.back() != *frame.result) {
      return Error("block result type mismatch");
    }
  }

  // An `if` with a result but no `else` cannot produce the result on the
  // false path.
  if (frame.kind == Kind::kIf && !frame.saw_else && arity != 0) {
    return Error("if with result requires else");
  }

  if (frame.kind == Kind::kFunc) {
    code_.push_back(CInstr{COp::kReturn, 0, 0, arity});
    done_ = true;
    frames_.pop_back();
    return Status::Ok();
  }

  const uint32_t end_pc = static_cast<uint32_t>(code_.size());
  for (size_t fixup : frame.branch_fixups) {
    if (fixup & 0x80000000u) {
      br_pool_[fixup & 0x7fffffffu].target = end_pc;  // br_table entry
    } else {
      code_[fixup].a = end_pc;
    }
  }
  if (frame.else_fixup != SIZE_MAX) code_[frame.else_fixup].a = end_pc;

  // Restore a clean stack carrying exactly the block result.
  stack_.resize(frame.height);
  const std::optional<ValType> result = frame.result;
  frames_.pop_back();
  if (result.has_value()) Push(*result);
  return Status::Ok();
}

Status FunctionCompiler::HandleElse() {
  Frame& frame = frames_.back();
  if (frame.kind != Kind::kIf || frame.saw_else) {
    return Error("else without matching if");
  }
  const uint32_t arity = frame.result.has_value() ? 1 : 0;
  if (!frame.unreachable) {
    if (stack_.size() != frame.height + arity) {
      return Error("then-branch ends with wrong stack height");
    }
    if (arity == 1 && stack_.back() != *frame.result) {
      return Error("then-branch result type mismatch");
    }
  }

  // Jump over the else branch from the end of then.
  frame.branch_fixups.push_back(code_.size());
  code_.push_back(CInstr{COp::kJump, 0, 0, arity});

  // False path of the `if` starts here.
  if (frame.else_fixup == SIZE_MAX) return Error("if frame missing else fixup");
  code_[frame.else_fixup].a = static_cast<uint32_t>(code_.size());
  frame.else_fixup = SIZE_MAX;
  frame.saw_else = true;
  frame.unreachable = false;
  stack_.resize(frame.height);
  return Status::Ok();
}

Status FunctionCompiler::HandleBranch(COp op) {
  RR_ASSIGN_OR_RETURN(const uint32_t depth, reader_.ReadLebU32());
  if (op == COp::kJumpIf) RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));

  RR_ASSIGN_OR_RETURN(Frame* const target, FrameAt(depth));
  RR_ASSIGN_OR_RETURN(const uint32_t drop, CheckBranch(*target));
  EmitBranchTo(*target, op, drop);

  if (op == COp::kJump) MarkUnreachable();
  return Status::Ok();
}

Status FunctionCompiler::HandleBrTable() {
  RR_ASSIGN_OR_RETURN(const uint32_t count, reader_.ReadLebU32());
  std::vector<uint32_t> depths(count);
  for (uint32_t i = 0; i < count; ++i) {
    RR_ASSIGN_OR_RETURN(depths[i], reader_.ReadLebU32());
  }
  RR_ASSIGN_OR_RETURN(const uint32_t default_depth, reader_.ReadLebU32());
  depths.push_back(default_depth);

  RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));

  // All labels must agree on arity.
  RR_ASSIGN_OR_RETURN(Frame* const default_frame, FrameAt(default_depth));
  const uint32_t arity = LabelArity(*default_frame);

  const uint32_t pool_offset = static_cast<uint32_t>(br_pool_.size());
  for (const uint32_t depth : depths) {
    RR_ASSIGN_OR_RETURN(Frame* const frame, FrameAt(depth));
    if (LabelArity(*frame) != arity) {
      return Error("br_table labels have mismatched arity");
    }
    RR_ASSIGN_OR_RETURN(const uint32_t drop, CheckBranch(*frame));
    BrTableEntry entry{0, drop, arity};
    if (frame->kind == Kind::kLoop) {
      entry.target = static_cast<uint32_t>(frame->start_pc);
      br_pool_.push_back(entry);
    } else {
      // Record fixup encoded as pool index with a sentinel bit.
      frame->branch_fixups.push_back(0x80000000u | br_pool_.size());
      br_pool_.push_back(entry);
    }
  }

  code_.push_back(CInstr{COp::kBrTable, pool_offset,
                         static_cast<uint32_t>(depths.size()), arity});
  MarkUnreachable();
  return Status::Ok();
}

Status FunctionCompiler::HandleCall() {
  RR_ASSIGN_OR_RETURN(const uint32_t func_index, reader_.ReadLebU32());
  const FuncType* const callee = module_.function_type(func_index);
  if (callee == nullptr) return Error("call index out of range");

  for (size_t i = callee->params.size(); i > 0; --i) {
    RR_RETURN_IF_ERROR(PopExpect(callee->params[i - 1]));
  }
  for (const ValType result : callee->results) Push(result);

  if (func_index < module_.num_imported_functions()) {
    code_.push_back(CInstr{COp::kCallHost, func_index, 0, 0});
  } else {
    code_.push_back(CInstr{COp::kCallWasm,
                           func_index - module_.num_imported_functions(), 0, 0});
  }
  return Status::Ok();
}

namespace memop {

struct Info {
  ValType value;
  uint32_t natural_align;  // log2 of access width
  bool is_store;
};

std::optional<Info> Lookup(Opcode op) {
  switch (op) {
    case Opcode::kI32Load: return Info{ValType::kI32, 2, false};
    case Opcode::kI64Load: return Info{ValType::kI64, 3, false};
    case Opcode::kF32Load: return Info{ValType::kF32, 2, false};
    case Opcode::kF64Load: return Info{ValType::kF64, 3, false};
    case Opcode::kI32Load8S:
    case Opcode::kI32Load8U: return Info{ValType::kI32, 0, false};
    case Opcode::kI32Load16S:
    case Opcode::kI32Load16U: return Info{ValType::kI32, 1, false};
    case Opcode::kI64Load8S:
    case Opcode::kI64Load8U: return Info{ValType::kI64, 0, false};
    case Opcode::kI64Load16S:
    case Opcode::kI64Load16U: return Info{ValType::kI64, 1, false};
    case Opcode::kI64Load32S:
    case Opcode::kI64Load32U: return Info{ValType::kI64, 2, false};
    case Opcode::kI32Store: return Info{ValType::kI32, 2, true};
    case Opcode::kI64Store: return Info{ValType::kI64, 3, true};
    case Opcode::kF32Store: return Info{ValType::kF32, 2, true};
    case Opcode::kF64Store: return Info{ValType::kF64, 3, true};
    case Opcode::kI32Store8: return Info{ValType::kI32, 0, true};
    case Opcode::kI32Store16: return Info{ValType::kI32, 1, true};
    case Opcode::kI64Store8: return Info{ValType::kI64, 0, true};
    case Opcode::kI64Store16: return Info{ValType::kI64, 1, true};
    case Opcode::kI64Store32: return Info{ValType::kI64, 2, true};
    default: return std::nullopt;
  }
}

}  // namespace memop

Status FunctionCompiler::HandleMemOp(Opcode op) {
  RR_RETURN_IF_ERROR(CheckMemoryPresent());
  const auto info = memop::Lookup(op);
  if (!info.has_value()) return Error("unknown memory opcode");

  RR_ASSIGN_OR_RETURN(const uint32_t align, reader_.ReadLebU32());
  RR_ASSIGN_OR_RETURN(const uint32_t offset, reader_.ReadLebU32());
  if (align > info->natural_align) {
    return Error("alignment exceeds natural alignment");
  }

  if (info->is_store) {
    RR_RETURN_IF_ERROR(PopExpect(info->value));
    RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));  // address
  } else {
    RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));
    Push(info->value);
  }
  code_.push_back(CInstr{PlainOp(op), offset, 0, 0});
  return Status::Ok();
}

Status FunctionCompiler::HandleMisc() {
  RR_ASSIGN_OR_RETURN(const uint32_t sub, reader_.ReadLebU32());
  switch (static_cast<MiscOpcode>(sub)) {
    case MiscOpcode::kMemoryCopy: {
      RR_RETURN_IF_ERROR(CheckMemoryPresent());
      RR_ASSIGN_OR_RETURN(const uint8_t dst_mem, reader_.ReadByte());
      RR_ASSIGN_OR_RETURN(const uint8_t src_mem, reader_.ReadByte());
      if (dst_mem != 0 || src_mem != 0) return Error("memory.copy index != 0");
      RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));  // len
      RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));  // src
      RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));  // dst
      code_.push_back(CInstr{COp::kMemoryCopy, 0, 0, 0});
      return Status::Ok();
    }
    case MiscOpcode::kMemoryFill: {
      RR_RETURN_IF_ERROR(CheckMemoryPresent());
      RR_ASSIGN_OR_RETURN(const uint8_t mem, reader_.ReadByte());
      if (mem != 0) return Error("memory.fill index != 0");
      RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));
      RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));
      RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));
      code_.push_back(CInstr{COp::kMemoryFill, 0, 0, 0});
      return Status::Ok();
    }
  }
  return Error(StrFormat("unsupported 0xFC sub-opcode %u", sub));
}

// Validates and emits all "plain" (straight-line) operations.
Status FunctionCompiler::HandlePlain(Opcode op) {
  const auto unop = [&](ValType in, ValType out) -> Status {
    RR_RETURN_IF_ERROR(PopExpect(in));
    Push(out);
    code_.push_back(CInstr{PlainOp(op), 0, 0, 0});
    return Status::Ok();
  };
  const auto binop = [&](ValType in, ValType out) -> Status {
    RR_RETURN_IF_ERROR(PopExpect(in));
    RR_RETURN_IF_ERROR(PopExpect(in));
    Push(out);
    code_.push_back(CInstr{PlainOp(op), 0, 0, 0});
    return Status::Ok();
  };

  switch (op) {
    case Opcode::kNop:
      return Status::Ok();  // no instruction emitted

    case Opcode::kDrop: {
      RR_ASSIGN_OR_RETURN(const auto popped, PopAny());
      (void)popped;
      code_.push_back(CInstr{PlainOp(op), 0, 0, 0});
      return Status::Ok();
    }
    case Opcode::kSelect: {
      RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));
      RR_ASSIGN_OR_RETURN(const auto b, PopAny());
      RR_ASSIGN_OR_RETURN(const auto a, PopAny());
      if (a.has_value() && b.has_value() && *a != *b) {
        return Error("select operand types differ");
      }
      Push(a.has_value() ? *a : (b.has_value() ? *b : ValType::kI32));
      code_.push_back(CInstr{PlainOp(op), 0, 0, 0});
      return Status::Ok();
    }

    // Constants.
    case Opcode::kI32Const: {
      RR_ASSIGN_OR_RETURN(const int32_t v, reader_.ReadLebS32());
      Push(ValType::kI32);
      code_.push_back(CInstr{PlainOp(op), 0, 0, static_cast<uint64_t>(
                                                    static_cast<uint32_t>(v))});
      return Status::Ok();
    }
    case Opcode::kI64Const: {
      RR_ASSIGN_OR_RETURN(const int64_t v, reader_.ReadLebS64());
      Push(ValType::kI64);
      code_.push_back(CInstr{PlainOp(op), 0, 0, static_cast<uint64_t>(v)});
      return Status::Ok();
    }
    case Opcode::kF32Const: {
      RR_ASSIGN_OR_RETURN(const uint32_t bits, reader_.ReadFixedU32());
      Push(ValType::kF32);
      code_.push_back(CInstr{PlainOp(op), 0, 0, bits});
      return Status::Ok();
    }
    case Opcode::kF64Const: {
      RR_ASSIGN_OR_RETURN(const uint64_t bits, reader_.ReadFixedU64());
      Push(ValType::kF64);
      code_.push_back(CInstr{PlainOp(op), 0, 0, bits});
      return Status::Ok();
    }

    // Locals / globals.
    case Opcode::kLocalGet:
    case Opcode::kLocalSet:
    case Opcode::kLocalTee: {
      RR_ASSIGN_OR_RETURN(const uint32_t index, reader_.ReadLebU32());
      if (index >= local_types_.size()) return Error("local index out of range");
      const ValType t = local_types_[index];
      if (op == Opcode::kLocalGet) {
        Push(t);
      } else if (op == Opcode::kLocalSet) {
        RR_RETURN_IF_ERROR(PopExpect(t));
      } else {
        RR_RETURN_IF_ERROR(PopExpect(t));
        Push(t);
      }
      code_.push_back(CInstr{PlainOp(op), index, 0, 0});
      return Status::Ok();
    }
    case Opcode::kGlobalGet:
    case Opcode::kGlobalSet: {
      RR_ASSIGN_OR_RETURN(const uint32_t index, reader_.ReadLebU32());
      if (index >= module_.globals.size()) return Error("global index out of range");
      const GlobalDef& global = module_.globals[index];
      if (op == Opcode::kGlobalGet) {
        Push(global.type);
      } else {
        if (!global.is_mutable) return Error("global.set on immutable global");
        RR_RETURN_IF_ERROR(PopExpect(global.type));
      }
      code_.push_back(CInstr{PlainOp(op), index, 0, 0});
      return Status::Ok();
    }

    case Opcode::kMemorySize: {
      RR_RETURN_IF_ERROR(CheckMemoryPresent());
      RR_ASSIGN_OR_RETURN(const uint8_t mem, reader_.ReadByte());
      if (mem != 0) return Error("memory index != 0");
      Push(ValType::kI32);
      code_.push_back(CInstr{PlainOp(op), 0, 0, 0});
      return Status::Ok();
    }
    case Opcode::kMemoryGrow: {
      RR_RETURN_IF_ERROR(CheckMemoryPresent());
      RR_ASSIGN_OR_RETURN(const uint8_t mem, reader_.ReadByte());
      if (mem != 0) return Error("memory index != 0");
      RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));
      Push(ValType::kI32);
      code_.push_back(CInstr{PlainOp(op), 0, 0, 0});
      return Status::Ok();
    }

    // i32 tests/comparisons.
    case Opcode::kI32Eqz: return unop(ValType::kI32, ValType::kI32);
    case Opcode::kI32Eq:
    case Opcode::kI32Ne:
    case Opcode::kI32LtS:
    case Opcode::kI32LtU:
    case Opcode::kI32GtS:
    case Opcode::kI32GtU:
    case Opcode::kI32LeS:
    case Opcode::kI32LeU:
    case Opcode::kI32GeS:
    case Opcode::kI32GeU: return binop(ValType::kI32, ValType::kI32);

    case Opcode::kI64Eqz: return unop(ValType::kI64, ValType::kI32);
    case Opcode::kI64Eq:
    case Opcode::kI64Ne:
    case Opcode::kI64LtS:
    case Opcode::kI64LtU:
    case Opcode::kI64GtS:
    case Opcode::kI64GtU:
    case Opcode::kI64LeS:
    case Opcode::kI64LeU:
    case Opcode::kI64GeS:
    case Opcode::kI64GeU: return binop(ValType::kI64, ValType::kI32);

    case Opcode::kF32Eq:
    case Opcode::kF32Ne:
    case Opcode::kF32Lt:
    case Opcode::kF32Gt:
    case Opcode::kF32Le:
    case Opcode::kF32Ge: return binop(ValType::kF32, ValType::kI32);

    case Opcode::kF64Eq:
    case Opcode::kF64Ne:
    case Opcode::kF64Lt:
    case Opcode::kF64Gt:
    case Opcode::kF64Le:
    case Opcode::kF64Ge: return binop(ValType::kF64, ValType::kI32);

    // i32 arithmetic.
    case Opcode::kI32Clz:
    case Opcode::kI32Ctz:
    case Opcode::kI32Popcnt: return unop(ValType::kI32, ValType::kI32);
    case Opcode::kI32Add:
    case Opcode::kI32Sub:
    case Opcode::kI32Mul:
    case Opcode::kI32DivS:
    case Opcode::kI32DivU:
    case Opcode::kI32RemS:
    case Opcode::kI32RemU:
    case Opcode::kI32And:
    case Opcode::kI32Or:
    case Opcode::kI32Xor:
    case Opcode::kI32Shl:
    case Opcode::kI32ShrS:
    case Opcode::kI32ShrU:
    case Opcode::kI32Rotl:
    case Opcode::kI32Rotr: return binop(ValType::kI32, ValType::kI32);

    // i64 arithmetic.
    case Opcode::kI64Clz:
    case Opcode::kI64Ctz:
    case Opcode::kI64Popcnt: return unop(ValType::kI64, ValType::kI64);
    case Opcode::kI64Add:
    case Opcode::kI64Sub:
    case Opcode::kI64Mul:
    case Opcode::kI64DivS:
    case Opcode::kI64DivU:
    case Opcode::kI64RemS:
    case Opcode::kI64RemU:
    case Opcode::kI64And:
    case Opcode::kI64Or:
    case Opcode::kI64Xor:
    case Opcode::kI64Shl:
    case Opcode::kI64ShrS:
    case Opcode::kI64ShrU:
    case Opcode::kI64Rotl:
    case Opcode::kI64Rotr: return binop(ValType::kI64, ValType::kI64);

    // f32 arithmetic.
    case Opcode::kF32Abs:
    case Opcode::kF32Neg:
    case Opcode::kF32Sqrt: return unop(ValType::kF32, ValType::kF32);
    case Opcode::kF32Add:
    case Opcode::kF32Sub:
    case Opcode::kF32Mul:
    case Opcode::kF32Div:
    case Opcode::kF32Min:
    case Opcode::kF32Max: return binop(ValType::kF32, ValType::kF32);

    // f64 arithmetic.
    case Opcode::kF64Abs:
    case Opcode::kF64Neg:
    case Opcode::kF64Ceil:
    case Opcode::kF64Floor:
    case Opcode::kF64Trunc:
    case Opcode::kF64Sqrt: return unop(ValType::kF64, ValType::kF64);
    case Opcode::kF64Add:
    case Opcode::kF64Sub:
    case Opcode::kF64Mul:
    case Opcode::kF64Div:
    case Opcode::kF64Min:
    case Opcode::kF64Max: return binop(ValType::kF64, ValType::kF64);

    // Conversions.
    case Opcode::kI32WrapI64: return unop(ValType::kI64, ValType::kI32);
    case Opcode::kI32TruncF64S:
    case Opcode::kI32TruncF64U: return unop(ValType::kF64, ValType::kI32);
    case Opcode::kI64ExtendI32S:
    case Opcode::kI64ExtendI32U: return unop(ValType::kI32, ValType::kI64);
    case Opcode::kI64TruncF64S: return unop(ValType::kF64, ValType::kI64);
    case Opcode::kF32ConvertI32S: return unop(ValType::kI32, ValType::kF32);
    case Opcode::kF32DemoteF64: return unop(ValType::kF64, ValType::kF32);
    case Opcode::kF64ConvertI32S:
    case Opcode::kF64ConvertI32U: return unop(ValType::kI32, ValType::kF64);
    case Opcode::kF64ConvertI64S:
    case Opcode::kF64ConvertI64U: return unop(ValType::kI64, ValType::kF64);
    case Opcode::kF64PromoteF32: return unop(ValType::kF32, ValType::kF64);

    default:
      return Error(StrFormat("unsupported opcode 0x%02x",
                             static_cast<unsigned>(op)));
  }
}

Result<CompiledFunction> FunctionCompiler::Compile() {
  local_types_ = func_type_.params;
  local_types_.insert(local_types_.end(), body_.locals.begin(), body_.locals.end());

  Frame func_frame;
  func_frame.kind = Kind::kFunc;
  func_frame.height = 0;
  if (!func_type_.results.empty()) func_frame.result = func_type_.results[0];
  frames_.push_back(std::move(func_frame));

  while (!done_) {
    if (reader_.AtEnd()) return Error("body ended without final `end`");
    RR_ASSIGN_OR_RETURN(const uint8_t byte, reader_.ReadByte());
    const Opcode op = static_cast<Opcode>(byte);

    switch (op) {
      case Opcode::kUnreachable:
        code_.push_back(CInstr{PlainOp(op), 0, 0, 0});
        MarkUnreachable();
        break;

      case Opcode::kBlock:
      case Opcode::kLoop: {
        RR_ASSIGN_OR_RETURN(const auto result, ReadBlockType());
        Frame frame;
        frame.kind = op == Opcode::kBlock ? Kind::kBlock : Kind::kLoop;
        frame.result = result;
        frame.height = stack_.size();
        frame.start_pc = code_.size();
        frames_.push_back(std::move(frame));
        break;
      }
      case Opcode::kIf: {
        RR_ASSIGN_OR_RETURN(const auto result, ReadBlockType());
        RR_RETURN_IF_ERROR(PopExpect(ValType::kI32));
        Frame frame;
        frame.kind = Kind::kIf;
        frame.result = result;
        frame.height = stack_.size();
        frame.else_fixup = code_.size();
        frames_.push_back(std::move(frame));
        code_.push_back(CInstr{COp::kJumpUnless, 0, 0, 0});
        break;
      }
      case Opcode::kElse:
        RR_RETURN_IF_ERROR(HandleElse());
        break;
      case Opcode::kEnd:
        RR_RETURN_IF_ERROR(HandleEnd());
        break;
      case Opcode::kBr:
        RR_RETURN_IF_ERROR(HandleBranch(COp::kJump));
        break;
      case Opcode::kBrIf:
        RR_RETURN_IF_ERROR(HandleBranch(COp::kJumpIf));
        break;
      case Opcode::kBrTable:
        RR_RETURN_IF_ERROR(HandleBrTable());
        break;
      case Opcode::kReturn: {
        const uint32_t arity = func_type_.results.empty() ? 0 : 1;
        const Frame& current = frames_.back();
        if (stack_.size() < frames_[0].height + arity && !current.unreachable) {
          return Error("return without result value");
        }
        if (arity == 1 && !current.unreachable &&
            stack_.back() != func_type_.results[0]) {
          return Error("return value type mismatch");
        }
        code_.push_back(CInstr{COp::kReturn, 0, 0, arity});
        MarkUnreachable();
        break;
      }
      case Opcode::kCall:
        RR_RETURN_IF_ERROR(HandleCall());
        break;
      case Opcode::kMiscPrefix:
        RR_RETURN_IF_ERROR(HandleMisc());
        break;

      default:
        if (memop::Lookup(op).has_value()) {
          RR_RETURN_IF_ERROR(HandleMemOp(op));
        } else {
          RR_RETURN_IF_ERROR(HandlePlain(op));
        }
        break;
    }
  }

  if (!reader_.AtEnd()) return Error("trailing bytes after final `end`");

  // Resolve br_table fixups recorded with the sentinel bit: they were left
  // inside frames that have been popped by now; HandleEnd patched plain
  // fixups directly. Pool entries referenced via sentinel got patched below.
  CompiledFunction out;
  out.type_index = body_.type_index;
  out.locals = body_.locals;
  out.code = std::move(code_);
  out.br_pool = std::move(br_pool_);
  out.max_stack = static_cast<uint32_t>(max_stack_);
  return out;
}

}  // namespace

Result<CompiledFunction> CompileFunction(const Module& module, uint32_t defined_index) {
  if (defined_index >= module.functions.size()) {
    return InvalidArgumentError("defined function index out of range");
  }
  const FunctionBody& body = module.functions[defined_index];
  if (body.type_index >= module.types.size()) {
    return InvalidArgumentError("function type index out of range");
  }
  return FunctionCompiler(module, defined_index).Compile();
}

Result<std::vector<CompiledFunction>> CompileModule(const Module& module) {
  for (const Import& import : module.imports) {
    if (import.type_index >= module.types.size()) {
      return InvalidArgumentError("import type index out of range");
    }
  }
  std::vector<CompiledFunction> compiled;
  compiled.reserve(module.functions.size());
  for (uint32_t i = 0; i < module.functions.size(); ++i) {
    auto result = CompileFunction(module, i);
    if (!result.ok()) {
      return InternalError("function #" + std::to_string(i) + ": " +
                           result.status().message());
    }
    compiled.push_back(std::move(result).value());
  }
  return compiled;
}

}  // namespace rr::wasm
