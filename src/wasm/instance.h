// A WebAssembly module instance: linear memory + globals + executable code,
// isolated from the host except through registered imports and the checked
// memory interface. This is the "Wasm VM"-side object the Roadrunner shim
// drives (§3.2.5: "creates a dedicated Wasm VM ... loads the binary into the
// isolated memory space").
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "wasm/compiled.h"
#include "wasm/host.h"
#include "wasm/memory.h"
#include "wasm/module.h"

namespace rr::wasm {

struct InstanceConfig {
  // Maximum interpreter call depth before trapping with kStackExhausted.
  uint32_t max_call_depth = 512;
  // Optional instruction budget; traps with kFuelExhausted when spent.
  std::optional<uint64_t> fuel;
  // Overrides the module's declared memory maximum (resource limit set by
  // the shim at VM creation, §3.2.5).
  std::optional<uint32_t> max_memory_pages;
};

// An AOT-simulated function body: native code that may only touch the
// sandbox through the Instance API. Mirrors WasmEdge's AOT mode, where a
// .wasm function runs as compiled native code but still operates on linear
// memory. See DESIGN.md ("Substitutions").
using NativeBody = std::function<Status(Instance& instance,
                                        std::span<const Value> args,
                                        std::span<Value> results)>;

class Instance {
 public:
  // Validates, compiles, links imports, allocates memory, applies data
  // segments. Fails closed on any unresolved import or validation error.
  static Result<std::unique_ptr<Instance>> Instantiate(
      Module module, const ImportResolver& imports, InstanceConfig config = {});

  const Module& module() const { return module_; }

  // Null when the module declares no memory.
  LinearMemory* memory() { return memory_.get(); }
  const LinearMemory* memory() const { return memory_.get(); }

  // Calls a function by combined index space (imports first).
  Result<std::vector<Value>> Call(uint32_t func_index, std::span<const Value> args);

  // Calls an exported function by name.
  Result<std::vector<Value>> CallExport(std::string_view name,
                                        std::span<const Value> args);

  bool HasExport(std::string_view name) const {
    return module_.FindExport(name, ExportKind::kFunction) != nullptr;
  }

  // Replaces a defined (exported) function's bytecode with a native body of
  // the same type — simulating an AOT-compiled function. The body still goes
  // through Call's type checks and may only reach memory via this Instance.
  Status RegisterNativeBody(std::string_view export_name, NativeBody body);

  Value global(uint32_t index) const { return globals_.at(index); }
  void set_global(uint32_t index, Value v) { globals_.at(index) = v; }

  // --- execution metering / accounting ------------------------------------
  uint64_t instructions_executed() const { return instructions_executed_; }
  uint64_t host_calls() const { return host_calls_; }
  std::optional<uint64_t> fuel_remaining() const { return fuel_; }
  void AddFuel(uint64_t amount) {
    if (fuel_.has_value()) *fuel_ += amount;
  }

 private:
  friend class Interpreter;

  Instance() = default;

  // Implemented in interpreter.cc.
  Status Invoke(uint32_t defined_index, std::span<const Value> args,
                std::span<Value> results);

  Module module_;
  InstanceConfig config_;
  std::vector<CompiledFunction> compiled_;       // parallel to module_.functions
  std::vector<HostFunction> imported_;           // parallel to module_.imports
  std::vector<NativeBody> native_bodies_;        // parallel to module_.functions
  std::unique_ptr<LinearMemory> memory_;
  std::vector<Value> globals_;

  uint32_t call_depth_ = 0;
  std::optional<uint64_t> fuel_;
  uint64_t instructions_executed_ = 0;
  uint64_t host_calls_ = 0;
};

}  // namespace rr::wasm
