#include "wasm/leb128.h"

namespace rr::wasm {

void AppendLebU32(Bytes& out, uint32_t value) {
  do {
    uint8_t byte = value & 0x7f;
    value >>= 7;
    if (value != 0) byte |= 0x80;
    out.push_back(byte);
  } while (value != 0);
}

void AppendLebU64(Bytes& out, uint64_t value) {
  do {
    uint8_t byte = value & 0x7f;
    value >>= 7;
    if (value != 0) byte |= 0x80;
    out.push_back(byte);
  } while (value != 0);
}

void AppendLebS32(Bytes& out, int32_t value) { AppendLebS64(out, value); }

void AppendLebS64(Bytes& out, int64_t value) {
  bool more = true;
  while (more) {
    uint8_t byte = value & 0x7f;
    value >>= 7;  // arithmetic shift
    if ((value == 0 && (byte & 0x40) == 0) || (value == -1 && (byte & 0x40) != 0)) {
      more = false;
    } else {
      byte |= 0x80;
    }
    out.push_back(byte);
  }
}

Result<uint8_t> ByteReader::ReadByte() {
  if (pos_ >= data_.size()) return DataLossError("unexpected end of wasm binary");
  return data_[pos_++];
}

Result<uint32_t> ByteReader::ReadLebU32() {
  uint32_t result = 0;
  int shift = 0;
  for (int i = 0; i < 5; ++i) {
    RR_ASSIGN_OR_RETURN(const uint8_t byte, ReadByte());
    result |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (i == 4 && (byte & 0xf0) != 0) {
        return InvalidArgumentError("LEB128 u32 overflow");
      }
      return result;
    }
    shift += 7;
  }
  return InvalidArgumentError("LEB128 u32 too long");
}

Result<uint64_t> ByteReader::ReadLebU64() {
  uint64_t result = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    RR_ASSIGN_OR_RETURN(const uint8_t byte, ReadByte());
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (i == 9 && (byte & 0xfe) != 0) {
        return InvalidArgumentError("LEB128 u64 overflow");
      }
      return result;
    }
    shift += 7;
  }
  return InvalidArgumentError("LEB128 u64 too long");
}

Result<int32_t> ByteReader::ReadLebS32() {
  RR_ASSIGN_OR_RETURN(const int64_t wide, ReadLebS64());
  if (wide < INT32_MIN || wide > INT32_MAX) {
    return InvalidArgumentError("LEB128 s32 out of range");
  }
  return static_cast<int32_t>(wide);
}

Result<int64_t> ByteReader::ReadLebS64() {
  int64_t result = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    RR_ASSIGN_OR_RETURN(const uint8_t byte, ReadByte());
    result |= static_cast<int64_t>(byte & 0x7f) << shift;
    shift += 7;
    if ((byte & 0x80) == 0) {
      if (shift < 64 && (byte & 0x40) != 0) {
        result |= -(int64_t{1} << shift);  // sign-extend
      }
      return result;
    }
  }
  return InvalidArgumentError("LEB128 s64 too long");
}

Result<uint32_t> ByteReader::ReadFixedU32() {
  if (remaining() < 4) return DataLossError("truncated fixed u32");
  const uint32_t v = LoadLE<uint32_t>(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadFixedU64() {
  if (remaining() < 8) return DataLossError("truncated fixed u64");
  const uint64_t v = LoadLE<uint64_t>(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<ByteSpan> ByteReader::ReadSpan(size_t length) {
  if (remaining() < length) return DataLossError("truncated span");
  const ByteSpan span = data_.subspan(pos_, length);
  pos_ += length;
  return span;
}

Status ByteReader::Skip(size_t length) {
  if (remaining() < length) return DataLossError("skip past end");
  pos_ += length;
  return Status::Ok();
}

}  // namespace rr::wasm
