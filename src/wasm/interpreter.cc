// Stack-machine interpreter executing the lowered CInstr stream.
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "wasm/instance.h"

namespace rr::wasm {
namespace {

Status Trap(TrapKind kind, std::string detail = {}) {
  return TrapToStatus(kind, std::move(detail));
}

// Wasm float min/max semantics: NaN-propagating, -0 < +0.
template <typename F>
F WasmMin(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == b) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}

template <typename F>
F WasmMax(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == b) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}

}  // namespace

class Interpreter {
 public:
  Interpreter(Instance& instance, const CompiledFunction& fn)
      : instance_(instance), fn_(fn) {}

  Status Run(std::span<const Value> args, std::span<Value> results);

 private:
  // --- stack helpers -------------------------------------------------------
  void Push(Value v) { stack_.push_back(v); }
  void PushI32(int32_t v) { stack_.push_back(Value::I32(v)); }
  void PushU32(uint32_t v) { stack_.push_back(Value::I32(static_cast<int32_t>(v))); }
  void PushI64(int64_t v) { stack_.push_back(Value::I64(v)); }
  void PushU64(uint64_t v) { stack_.push_back(Value::I64(static_cast<int64_t>(v))); }
  void PushF32(float v) { stack_.push_back(Value::F32(v)); }
  void PushF64(double v) { stack_.push_back(Value::F64(v)); }

  Value Pop() {
    const Value v = stack_.back();
    stack_.pop_back();
    return v;
  }
  int32_t PopI32() { return Pop().i32; }
  uint32_t PopU32() { return Pop().AsU32(); }
  int64_t PopI64() { return Pop().i64; }
  uint64_t PopU64() { return Pop().AsU64(); }
  float PopF32() { return Pop().f32; }
  double PopF64() { return Pop().f64; }

  // Branch value transfer: keep the top `arity` values, drop `drop` beneath.
  void Unwind(uint32_t drop, uint32_t arity) {
    if (drop == 0) return;
    stack_.erase(stack_.end() - arity - drop, stack_.end() - arity);
  }

  template <typename T, typename Pushed = T>
  Status DoLoad(uint64_t offset);
  template <typename T, typename Popped>
  Status DoStore(uint64_t offset);

  Instance& instance_;
  const CompiledFunction& fn_;
  std::vector<Value> locals_;
  std::vector<Value> stack_;
};

template <typename T, typename Pushed>
Status Interpreter::DoLoad(uint64_t offset) {
  const uint64_t addr = static_cast<uint64_t>(PopU32()) + offset;
  auto loaded = instance_.memory_->Load<T>(addr);
  if (!loaded.ok()) return loaded.status();
  const Pushed widened = static_cast<Pushed>(*loaded);
  if constexpr (std::is_same_v<Pushed, int32_t> || std::is_same_v<Pushed, uint32_t>) {
    PushU32(static_cast<uint32_t>(widened));
  } else if constexpr (std::is_same_v<Pushed, int64_t> || std::is_same_v<Pushed, uint64_t>) {
    PushU64(static_cast<uint64_t>(widened));
  } else if constexpr (std::is_same_v<Pushed, float>) {
    PushF32(widened);
  } else {
    PushF64(widened);
  }
  return Status::Ok();
}

template <typename T, typename Popped>
Status Interpreter::DoStore(uint64_t offset) {
  T narrow;
  if constexpr (std::is_same_v<Popped, uint32_t>) {
    narrow = static_cast<T>(PopU32());
  } else if constexpr (std::is_same_v<Popped, uint64_t>) {
    narrow = static_cast<T>(PopU64());
  } else if constexpr (std::is_same_v<Popped, float>) {
    narrow = PopF32();
  } else {
    narrow = PopF64();
  }
  const uint64_t addr = static_cast<uint64_t>(PopU32()) + offset;
  return instance_.memory_->Store<T>(addr, narrow);
}

Status Interpreter::Run(std::span<const Value> args, std::span<Value> results) {
  // Locals: parameters followed by zero-initialized declared locals.
  locals_.assign(args.begin(), args.end());
  for (const ValType t : fn_.locals) {
    Value zero;
    zero.type = t;
    zero.i64 = 0;
    locals_.push_back(zero);
  }
  stack_.reserve(fn_.max_stack);

  const std::vector<CInstr>& code = fn_.code;
  size_t pc = 0;

  while (pc < code.size()) {
    const CInstr& instr = code[pc];
    ++pc;
    ++instance_.instructions_executed_;
    if (instance_.fuel_.has_value()) {
      if (*instance_.fuel_ == 0) return Trap(TrapKind::kFuelExhausted);
      --*instance_.fuel_;
    }

    switch (instr.op) {
      case COp::kJump:
        Unwind(instr.b, static_cast<uint32_t>(instr.imm));
        pc = instr.a;
        continue;
      case COp::kJumpIf:
        if (PopI32() != 0) {
          Unwind(instr.b, static_cast<uint32_t>(instr.imm));
          pc = instr.a;
        }
        continue;
      case COp::kJumpUnless:
        if (PopI32() == 0) {
          Unwind(instr.b, static_cast<uint32_t>(instr.imm));
          pc = instr.a;
        }
        continue;
      case COp::kBrTable: {
        const uint32_t index = PopU32();
        const uint32_t entry_count = instr.b;
        const uint32_t selected = index < entry_count - 1 ? index : entry_count - 1;
        const BrTableEntry& entry = fn_.br_pool[instr.a + selected];
        Unwind(entry.drop, entry.arity);
        pc = entry.target;
        continue;
      }
      case COp::kReturn: {
        const uint32_t arity = static_cast<uint32_t>(instr.imm);
        for (uint32_t i = 0; i < arity; ++i) {
          results[arity - 1 - i] = Pop();
        }
        return Status::Ok();
      }
      case COp::kCallHost: {
        const HostFunction& host = instance_.imported_[instr.a];
        const size_t num_params = host.type.params.size();
        const size_t num_results = host.type.results.size();
        std::vector<Value> call_args(num_params);
        for (size_t i = 0; i < num_params; ++i) {
          call_args[num_params - 1 - i] = Pop();
        }
        std::vector<Value> call_results(num_results);
        for (size_t i = 0; i < num_results; ++i) {
          call_results[i].type = host.type.results[i];
        }
        ++instance_.host_calls_;
        RR_RETURN_IF_ERROR(host.fn(instance_, call_args, call_results));
        for (const Value& v : call_results) Push(v);
        continue;
      }
      case COp::kCallWasm: {
        const CompiledFunction& callee = instance_.compiled_[instr.a];
        const FuncType& type = instance_.module_.types[callee.type_index];
        const size_t num_params = type.params.size();
        std::vector<Value> call_args(num_params);
        for (size_t i = 0; i < num_params; ++i) {
          call_args[num_params - 1 - i] = Pop();
        }
        std::vector<Value> call_results(type.results.size());
        const uint32_t defined = instr.a;
        if (instance_.native_bodies_[defined]) {
          RR_RETURN_IF_ERROR(
              instance_.native_bodies_[defined](instance_, call_args, call_results));
        } else {
          RR_RETURN_IF_ERROR(instance_.Invoke(defined, call_args, call_results));
        }
        for (const Value& v : call_results) Push(v);
        continue;
      }
      case COp::kMemoryCopy: {
        const uint32_t len = PopU32();
        const uint32_t src = PopU32();
        const uint32_t dst = PopU32();
        RR_RETURN_IF_ERROR(instance_.memory_->Copy(dst, src, len));
        continue;
      }
      case COp::kMemoryFill: {
        const uint32_t len = PopU32();
        const uint32_t value = PopU32();
        const uint32_t dst = PopU32();
        RR_RETURN_IF_ERROR(
            instance_.memory_->Fill(dst, static_cast<uint8_t>(value), len));
        continue;
      }
      default:
        break;  // plain opcode, handled below
    }

    const Opcode op = static_cast<Opcode>(static_cast<uint16_t>(instr.op));
    switch (op) {
      case Opcode::kUnreachable:
        return Trap(TrapKind::kUnreachable);

      case Opcode::kDrop:
        (void)Pop();
        break;
      case Opcode::kSelect: {
        const int32_t cond = PopI32();
        const Value b = Pop();
        const Value a = Pop();
        Push(cond != 0 ? a : b);
        break;
      }

      case Opcode::kLocalGet: Push(locals_[instr.a]); break;
      case Opcode::kLocalSet: locals_[instr.a] = Pop(); break;
      case Opcode::kLocalTee: locals_[instr.a] = stack_.back(); break;
      case Opcode::kGlobalGet: Push(instance_.globals_[instr.a]); break;
      case Opcode::kGlobalSet: instance_.globals_[instr.a] = Pop(); break;

      case Opcode::kI32Load: RR_RETURN_IF_ERROR((DoLoad<uint32_t>(instr.a))); break;
      case Opcode::kI64Load: RR_RETURN_IF_ERROR((DoLoad<uint64_t>(instr.a))); break;
      case Opcode::kF32Load: RR_RETURN_IF_ERROR((DoLoad<float>(instr.a))); break;
      case Opcode::kF64Load: RR_RETURN_IF_ERROR((DoLoad<double>(instr.a))); break;
      case Opcode::kI32Load8S: RR_RETURN_IF_ERROR((DoLoad<int8_t, int32_t>(instr.a))); break;
      case Opcode::kI32Load8U: RR_RETURN_IF_ERROR((DoLoad<uint8_t, uint32_t>(instr.a))); break;
      case Opcode::kI32Load16S: RR_RETURN_IF_ERROR((DoLoad<int16_t, int32_t>(instr.a))); break;
      case Opcode::kI32Load16U: RR_RETURN_IF_ERROR((DoLoad<uint16_t, uint32_t>(instr.a))); break;
      case Opcode::kI64Load8S: RR_RETURN_IF_ERROR((DoLoad<int8_t, int64_t>(instr.a))); break;
      case Opcode::kI64Load8U: RR_RETURN_IF_ERROR((DoLoad<uint8_t, uint64_t>(instr.a))); break;
      case Opcode::kI64Load16S: RR_RETURN_IF_ERROR((DoLoad<int16_t, int64_t>(instr.a))); break;
      case Opcode::kI64Load16U: RR_RETURN_IF_ERROR((DoLoad<uint16_t, uint64_t>(instr.a))); break;
      case Opcode::kI64Load32S: RR_RETURN_IF_ERROR((DoLoad<int32_t, int64_t>(instr.a))); break;
      case Opcode::kI64Load32U: RR_RETURN_IF_ERROR((DoLoad<uint32_t, uint64_t>(instr.a))); break;
      case Opcode::kI32Store: RR_RETURN_IF_ERROR((DoStore<uint32_t, uint32_t>(instr.a))); break;
      case Opcode::kI64Store: RR_RETURN_IF_ERROR((DoStore<uint64_t, uint64_t>(instr.a))); break;
      case Opcode::kF32Store: RR_RETURN_IF_ERROR((DoStore<float, float>(instr.a))); break;
      case Opcode::kF64Store: RR_RETURN_IF_ERROR((DoStore<double, double>(instr.a))); break;
      case Opcode::kI32Store8: RR_RETURN_IF_ERROR((DoStore<uint8_t, uint32_t>(instr.a))); break;
      case Opcode::kI32Store16: RR_RETURN_IF_ERROR((DoStore<uint16_t, uint32_t>(instr.a))); break;
      case Opcode::kI64Store8: RR_RETURN_IF_ERROR((DoStore<uint8_t, uint64_t>(instr.a))); break;
      case Opcode::kI64Store16: RR_RETURN_IF_ERROR((DoStore<uint16_t, uint64_t>(instr.a))); break;
      case Opcode::kI64Store32: RR_RETURN_IF_ERROR((DoStore<uint32_t, uint64_t>(instr.a))); break;

      case Opcode::kMemorySize:
        PushU32(instance_.memory_->pages());
        break;
      case Opcode::kMemoryGrow:
        PushI32(instance_.memory_->Grow(PopU32()));
        break;

      case Opcode::kI32Const: PushU32(static_cast<uint32_t>(instr.imm)); break;
      case Opcode::kI64Const: PushU64(instr.imm); break;
      case Opcode::kF32Const: {
        float f;
        const uint32_t bits = static_cast<uint32_t>(instr.imm);
        std::memcpy(&f, &bits, 4);
        PushF32(f);
        break;
      }
      case Opcode::kF64Const: {
        double d;
        std::memcpy(&d, &instr.imm, 8);
        PushF64(d);
        break;
      }

      // --- i32 compare ---
      case Opcode::kI32Eqz: PushI32(PopI32() == 0); break;
      case Opcode::kI32Eq: { const auto b = PopI32(), a = PopI32(); PushI32(a == b); break; }
      case Opcode::kI32Ne: { const auto b = PopI32(), a = PopI32(); PushI32(a != b); break; }
      case Opcode::kI32LtS: { const auto b = PopI32(), a = PopI32(); PushI32(a < b); break; }
      case Opcode::kI32LtU: { const auto b = PopU32(), a = PopU32(); PushI32(a < b); break; }
      case Opcode::kI32GtS: { const auto b = PopI32(), a = PopI32(); PushI32(a > b); break; }
      case Opcode::kI32GtU: { const auto b = PopU32(), a = PopU32(); PushI32(a > b); break; }
      case Opcode::kI32LeS: { const auto b = PopI32(), a = PopI32(); PushI32(a <= b); break; }
      case Opcode::kI32LeU: { const auto b = PopU32(), a = PopU32(); PushI32(a <= b); break; }
      case Opcode::kI32GeS: { const auto b = PopI32(), a = PopI32(); PushI32(a >= b); break; }
      case Opcode::kI32GeU: { const auto b = PopU32(), a = PopU32(); PushI32(a >= b); break; }

      // --- i64 compare ---
      case Opcode::kI64Eqz: PushI32(PopI64() == 0); break;
      case Opcode::kI64Eq: { const auto b = PopI64(), a = PopI64(); PushI32(a == b); break; }
      case Opcode::kI64Ne: { const auto b = PopI64(), a = PopI64(); PushI32(a != b); break; }
      case Opcode::kI64LtS: { const auto b = PopI64(), a = PopI64(); PushI32(a < b); break; }
      case Opcode::kI64LtU: { const auto b = PopU64(), a = PopU64(); PushI32(a < b); break; }
      case Opcode::kI64GtS: { const auto b = PopI64(), a = PopI64(); PushI32(a > b); break; }
      case Opcode::kI64GtU: { const auto b = PopU64(), a = PopU64(); PushI32(a > b); break; }
      case Opcode::kI64LeS: { const auto b = PopI64(), a = PopI64(); PushI32(a <= b); break; }
      case Opcode::kI64LeU: { const auto b = PopU64(), a = PopU64(); PushI32(a <= b); break; }
      case Opcode::kI64GeS: { const auto b = PopI64(), a = PopI64(); PushI32(a >= b); break; }
      case Opcode::kI64GeU: { const auto b = PopU64(), a = PopU64(); PushI32(a >= b); break; }

      // --- float compare ---
      case Opcode::kF32Eq: { const auto b = PopF32(), a = PopF32(); PushI32(a == b); break; }
      case Opcode::kF32Ne: { const auto b = PopF32(), a = PopF32(); PushI32(a != b); break; }
      case Opcode::kF32Lt: { const auto b = PopF32(), a = PopF32(); PushI32(a < b); break; }
      case Opcode::kF32Gt: { const auto b = PopF32(), a = PopF32(); PushI32(a > b); break; }
      case Opcode::kF32Le: { const auto b = PopF32(), a = PopF32(); PushI32(a <= b); break; }
      case Opcode::kF32Ge: { const auto b = PopF32(), a = PopF32(); PushI32(a >= b); break; }
      case Opcode::kF64Eq: { const auto b = PopF64(), a = PopF64(); PushI32(a == b); break; }
      case Opcode::kF64Ne: { const auto b = PopF64(), a = PopF64(); PushI32(a != b); break; }
      case Opcode::kF64Lt: { const auto b = PopF64(), a = PopF64(); PushI32(a < b); break; }
      case Opcode::kF64Gt: { const auto b = PopF64(), a = PopF64(); PushI32(a > b); break; }
      case Opcode::kF64Le: { const auto b = PopF64(), a = PopF64(); PushI32(a <= b); break; }
      case Opcode::kF64Ge: { const auto b = PopF64(), a = PopF64(); PushI32(a >= b); break; }

      // --- i32 arithmetic ---
      case Opcode::kI32Clz: PushI32(std::countl_zero(PopU32())); break;
      case Opcode::kI32Ctz: PushI32(std::countr_zero(PopU32())); break;
      case Opcode::kI32Popcnt: PushI32(std::popcount(PopU32())); break;
      case Opcode::kI32Add: { const auto b = PopU32(), a = PopU32(); PushU32(a + b); break; }
      case Opcode::kI32Sub: { const auto b = PopU32(), a = PopU32(); PushU32(a - b); break; }
      case Opcode::kI32Mul: { const auto b = PopU32(), a = PopU32(); PushU32(a * b); break; }
      case Opcode::kI32DivS: {
        const int32_t b = PopI32(), a = PopI32();
        if (b == 0) return Trap(TrapKind::kIntegerDivideByZero);
        if (a == INT32_MIN && b == -1) return Trap(TrapKind::kIntegerOverflow);
        PushI32(a / b);
        break;
      }
      case Opcode::kI32DivU: {
        const uint32_t b = PopU32(), a = PopU32();
        if (b == 0) return Trap(TrapKind::kIntegerDivideByZero);
        PushU32(a / b);
        break;
      }
      case Opcode::kI32RemS: {
        const int32_t b = PopI32(), a = PopI32();
        if (b == 0) return Trap(TrapKind::kIntegerDivideByZero);
        PushI32(a == INT32_MIN && b == -1 ? 0 : a % b);
        break;
      }
      case Opcode::kI32RemU: {
        const uint32_t b = PopU32(), a = PopU32();
        if (b == 0) return Trap(TrapKind::kIntegerDivideByZero);
        PushU32(a % b);
        break;
      }
      case Opcode::kI32And: { const auto b = PopU32(), a = PopU32(); PushU32(a & b); break; }
      case Opcode::kI32Or: { const auto b = PopU32(), a = PopU32(); PushU32(a | b); break; }
      case Opcode::kI32Xor: { const auto b = PopU32(), a = PopU32(); PushU32(a ^ b); break; }
      case Opcode::kI32Shl: { const auto b = PopU32(), a = PopU32(); PushU32(a << (b & 31)); break; }
      case Opcode::kI32ShrS: { const auto b = PopU32(); const auto a = PopI32(); PushI32(a >> (b & 31)); break; }
      case Opcode::kI32ShrU: { const auto b = PopU32(), a = PopU32(); PushU32(a >> (b & 31)); break; }
      case Opcode::kI32Rotl: { const auto b = PopU32(), a = PopU32(); PushU32(std::rotl(a, static_cast<int>(b & 31))); break; }
      case Opcode::kI32Rotr: { const auto b = PopU32(), a = PopU32(); PushU32(std::rotr(a, static_cast<int>(b & 31))); break; }

      // --- i64 arithmetic ---
      case Opcode::kI64Clz: PushI64(std::countl_zero(PopU64())); break;
      case Opcode::kI64Ctz: PushI64(std::countr_zero(PopU64())); break;
      case Opcode::kI64Popcnt: PushI64(std::popcount(PopU64())); break;
      case Opcode::kI64Add: { const auto b = PopU64(), a = PopU64(); PushU64(a + b); break; }
      case Opcode::kI64Sub: { const auto b = PopU64(), a = PopU64(); PushU64(a - b); break; }
      case Opcode::kI64Mul: { const auto b = PopU64(), a = PopU64(); PushU64(a * b); break; }
      case Opcode::kI64DivS: {
        const int64_t b = PopI64(), a = PopI64();
        if (b == 0) return Trap(TrapKind::kIntegerDivideByZero);
        if (a == INT64_MIN && b == -1) return Trap(TrapKind::kIntegerOverflow);
        PushI64(a / b);
        break;
      }
      case Opcode::kI64DivU: {
        const uint64_t b = PopU64(), a = PopU64();
        if (b == 0) return Trap(TrapKind::kIntegerDivideByZero);
        PushU64(a / b);
        break;
      }
      case Opcode::kI64RemS: {
        const int64_t b = PopI64(), a = PopI64();
        if (b == 0) return Trap(TrapKind::kIntegerDivideByZero);
        PushI64(a == INT64_MIN && b == -1 ? 0 : a % b);
        break;
      }
      case Opcode::kI64RemU: {
        const uint64_t b = PopU64(), a = PopU64();
        if (b == 0) return Trap(TrapKind::kIntegerDivideByZero);
        PushU64(a % b);
        break;
      }
      case Opcode::kI64And: { const auto b = PopU64(), a = PopU64(); PushU64(a & b); break; }
      case Opcode::kI64Or: { const auto b = PopU64(), a = PopU64(); PushU64(a | b); break; }
      case Opcode::kI64Xor: { const auto b = PopU64(), a = PopU64(); PushU64(a ^ b); break; }
      case Opcode::kI64Shl: { const auto b = PopU64(), a = PopU64(); PushU64(a << (b & 63)); break; }
      case Opcode::kI64ShrS: { const auto b = PopU64(); const auto a = PopI64(); PushI64(a >> (b & 63)); break; }
      case Opcode::kI64ShrU: { const auto b = PopU64(), a = PopU64(); PushU64(a >> (b & 63)); break; }
      case Opcode::kI64Rotl: { const auto b = PopU64(), a = PopU64(); PushU64(std::rotl(a, static_cast<int>(b & 63))); break; }
      case Opcode::kI64Rotr: { const auto b = PopU64(), a = PopU64(); PushU64(std::rotr(a, static_cast<int>(b & 63))); break; }

      // --- f32 arithmetic ---
      case Opcode::kF32Abs: PushF32(std::fabs(PopF32())); break;
      case Opcode::kF32Neg: PushF32(-PopF32()); break;
      case Opcode::kF32Sqrt: PushF32(std::sqrt(PopF32())); break;
      case Opcode::kF32Add: { const auto b = PopF32(), a = PopF32(); PushF32(a + b); break; }
      case Opcode::kF32Sub: { const auto b = PopF32(), a = PopF32(); PushF32(a - b); break; }
      case Opcode::kF32Mul: { const auto b = PopF32(), a = PopF32(); PushF32(a * b); break; }
      case Opcode::kF32Div: { const auto b = PopF32(), a = PopF32(); PushF32(a / b); break; }
      case Opcode::kF32Min: { const auto b = PopF32(), a = PopF32(); PushF32(WasmMin(a, b)); break; }
      case Opcode::kF32Max: { const auto b = PopF32(), a = PopF32(); PushF32(WasmMax(a, b)); break; }

      // --- f64 arithmetic ---
      case Opcode::kF64Abs: PushF64(std::fabs(PopF64())); break;
      case Opcode::kF64Neg: PushF64(-PopF64()); break;
      case Opcode::kF64Ceil: PushF64(std::ceil(PopF64())); break;
      case Opcode::kF64Floor: PushF64(std::floor(PopF64())); break;
      case Opcode::kF64Trunc: PushF64(std::trunc(PopF64())); break;
      case Opcode::kF64Sqrt: PushF64(std::sqrt(PopF64())); break;
      case Opcode::kF64Add: { const auto b = PopF64(), a = PopF64(); PushF64(a + b); break; }
      case Opcode::kF64Sub: { const auto b = PopF64(), a = PopF64(); PushF64(a - b); break; }
      case Opcode::kF64Mul: { const auto b = PopF64(), a = PopF64(); PushF64(a * b); break; }
      case Opcode::kF64Div: { const auto b = PopF64(), a = PopF64(); PushF64(a / b); break; }
      case Opcode::kF64Min: { const auto b = PopF64(), a = PopF64(); PushF64(WasmMin(a, b)); break; }
      case Opcode::kF64Max: { const auto b = PopF64(), a = PopF64(); PushF64(WasmMax(a, b)); break; }

      // --- conversions ---
      case Opcode::kI32WrapI64: PushU32(static_cast<uint32_t>(PopU64())); break;
      case Opcode::kI32TruncF64S: {
        const double d = PopF64();
        if (std::isnan(d)) return Trap(TrapKind::kInvalidConversion);
        if (d >= 2147483648.0 || d < -2147483649.0) {
          return Trap(TrapKind::kIntegerOverflow);
        }
        PushI32(static_cast<int32_t>(d));
        break;
      }
      case Opcode::kI32TruncF64U: {
        const double d = PopF64();
        if (std::isnan(d)) return Trap(TrapKind::kInvalidConversion);
        if (d >= 4294967296.0 || d <= -1.0) return Trap(TrapKind::kIntegerOverflow);
        PushU32(static_cast<uint32_t>(d));
        break;
      }
      case Opcode::kI64ExtendI32S: PushI64(PopI32()); break;
      case Opcode::kI64ExtendI32U: PushU64(PopU32()); break;
      case Opcode::kI64TruncF64S: {
        const double d = PopF64();
        if (std::isnan(d)) return Trap(TrapKind::kInvalidConversion);
        if (d >= 9223372036854775808.0 || d < -9223372036854775808.0) {
          return Trap(TrapKind::kIntegerOverflow);
        }
        PushI64(static_cast<int64_t>(d));
        break;
      }
      case Opcode::kF32ConvertI32S: PushF32(static_cast<float>(PopI32())); break;
      case Opcode::kF32DemoteF64: PushF32(static_cast<float>(PopF64())); break;
      case Opcode::kF64ConvertI32S: PushF64(static_cast<double>(PopI32())); break;
      case Opcode::kF64ConvertI32U: PushF64(static_cast<double>(PopU32())); break;
      case Opcode::kF64ConvertI64S: PushF64(static_cast<double>(PopI64())); break;
      case Opcode::kF64ConvertI64U: PushF64(static_cast<double>(PopU64())); break;
      case Opcode::kF64PromoteF32: PushF64(static_cast<double>(PopF32())); break;

      default:
        return InternalError("interpreter reached unknown opcode " +
                             std::string(OpcodeName(op)));
    }
  }
  return InternalError("function body fell off the end without return");
}

Status Instance::Invoke(uint32_t defined_index, std::span<const Value> args,
                        std::span<Value> results) {
  if (call_depth_ >= config_.max_call_depth) {
    return TrapToStatus(TrapKind::kStackExhausted);
  }
  ++call_depth_;
  Interpreter interp(*this, compiled_[defined_index]);
  const Status status = interp.Run(args, results);
  --call_depth_;
  return status;
}

}  // namespace rr::wasm
