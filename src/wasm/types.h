// Core WebAssembly type definitions: value types, function types, limits,
// and the runtime Value representation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rr::wasm {

// Binary encodings per the Wasm 1.0 spec.
enum class ValType : uint8_t {
  kI32 = 0x7f,
  kI64 = 0x7e,
  kF32 = 0x7d,
  kF64 = 0x7c,
};

std::string_view ValTypeName(ValType t);
Result<ValType> ValTypeFromByte(uint8_t byte);

struct FuncType {
  std::vector<ValType> params;
  std::vector<ValType> results;

  bool operator==(const FuncType& other) const = default;

  std::string ToString() const;
};

// Memory limits in 64 KiB pages.
struct Limits {
  uint32_t min_pages = 0;
  bool has_max = false;
  uint32_t max_pages = 0;

  bool operator==(const Limits& other) const = default;
};

inline constexpr uint32_t kWasmPageSize = 64 * 1024;
// Hard cap on linear memory growth: 2 GiB (32768 pages). Keeps runaway guest
// allocations from exhausting the benchmark host.
inline constexpr uint32_t kDefaultMaxPages = 32768;

// A runtime value. Tagged so host functions can type-check arguments.
struct Value {
  ValType type = ValType::kI32;
  union {
    int32_t i32;
    int64_t i64;
    float f32;
    double f64;
  };

  Value() : i64(0) {}

  static Value I32(int32_t v) {
    Value out;
    out.type = ValType::kI32;
    out.i32 = v;
    return out;
  }
  static Value I64(int64_t v) {
    Value out;
    out.type = ValType::kI64;
    out.i64 = v;
    return out;
  }
  static Value F32(float v) {
    Value out;
    out.type = ValType::kF32;
    out.f32 = v;
    return out;
  }
  static Value F64(double v) {
    Value out;
    out.type = ValType::kF64;
    out.f64 = v;
    return out;
  }

  uint32_t AsU32() const { return static_cast<uint32_t>(i32); }
  uint64_t AsU64() const { return static_cast<uint64_t>(i64); }

  std::string ToString() const;
};

// Reasons a Wasm computation can trap. Mirrors the spec's trap conditions.
enum class TrapKind {
  kUnreachable,
  kMemoryOutOfBounds,
  kIntegerDivideByZero,
  kIntegerOverflow,
  kInvalidConversion,
  kStackExhausted,
  kFuelExhausted,
  kHostError,
};

std::string_view TrapKindName(TrapKind kind);

Status TrapToStatus(TrapKind kind, std::string detail = {});

}  // namespace rr::wasm
