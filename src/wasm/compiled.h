// Lowered (validated) function representation executed by the interpreter.
//
// Structured control flow from the binary format is compiled into direct
// jumps with precomputed stack-unwind amounts, so the interpreter's hot loop
// never re-discovers block boundaries.
#pragma once

#include <cstdint>
#include <vector>

#include "wasm/opcodes.h"
#include "wasm/types.h"

namespace rr::wasm {

// Executed operations. Values below 0x100 are the original opcode byte;
// control flow is rewritten into the internal ops above 0x100.
enum class COp : uint16_t {
  kJump = 0x100,        // unconditional: a=target pc, b=drop, imm=arity
  kJumpIf = 0x101,      // pops i32 cond; jumps when nonzero
  kJumpUnless = 0x102,  // pops i32 cond; jumps when zero (lowered `if`)
  kBrTable = 0x103,     // pops i32 index; a=pool offset, b=entry count (last is default)
  kCallHost = 0x104,    // a = import index
  kCallWasm = 0x105,    // a = defined function index
  kReturn = 0x106,      // imm = result arity
  kMemoryCopy = 0x108,
  kMemoryFill = 0x109,
};

inline COp PlainOp(Opcode op) { return static_cast<COp>(static_cast<uint8_t>(op)); }

struct CInstr {
  COp op;
  uint32_t a = 0;   // index / jump target / memarg offset
  uint32_t b = 0;   // drop count for jumps
  uint64_t imm = 0; // const bits / branch arity
};

struct BrTableEntry {
  uint32_t target = 0;
  uint32_t drop = 0;
  uint32_t arity = 0;
};

struct CompiledFunction {
  uint32_t type_index = 0;
  std::vector<ValType> locals;  // declared locals only (params excluded)
  std::vector<CInstr> code;     // terminated by kReturn
  std::vector<BrTableEntry> br_pool;
  uint32_t max_stack = 0;       // validated operand-stack high-water mark
};

}  // namespace rr::wasm
