// Single-pass validator + lowering compiler for function bodies.
//
// Implements the type-checking algorithm from the WebAssembly spec appendix
// (operand stack + control stack with polymorphic unreachable frames) and
// simultaneously emits the flat CInstr stream with resolved branch targets.
#pragma once

#include "common/status.h"
#include "wasm/compiled.h"
#include "wasm/module.h"

namespace rr::wasm {

// Validates and lowers one defined function (index into module.functions).
Result<CompiledFunction> CompileFunction(const Module& module,
                                         uint32_t defined_index);

// Validates module-level invariants and compiles every body.
Result<std::vector<CompiledFunction>> CompileModule(const Module& module);

}  // namespace rr::wasm
