// Programmatic construction of WebAssembly modules.
//
// ModuleBuilder assembles a Module IR and can serialize it to a genuine
// .wasm binary (magic, sections, LEB128) that our decoder — or any compliant
// runtime — can load. Tests round-trip builder → Encode() → Decode().
//
// CodeEmitter is a tiny assembler for function bodies: each method appends
// one instruction's binary encoding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "wasm/leb128.h"
#include "wasm/module.h"
#include "wasm/opcodes.h"

namespace rr::wasm {

class CodeEmitter {
 public:
  const Bytes& bytes() const { return code_; }

  CodeEmitter& Op(Opcode op) {
    code_.push_back(static_cast<uint8_t>(op));
    return *this;
  }

  // Control flow. `block_type` is kVoidBlockType or a ValType byte.
  CodeEmitter& Block(uint8_t block_type = kVoidBlockType) {
    Op(Opcode::kBlock);
    code_.push_back(block_type);
    return *this;
  }
  CodeEmitter& Block(ValType result) { return Block(static_cast<uint8_t>(result)); }
  CodeEmitter& Loop(uint8_t block_type = kVoidBlockType) {
    Op(Opcode::kLoop);
    code_.push_back(block_type);
    return *this;
  }
  CodeEmitter& If(uint8_t block_type = kVoidBlockType) {
    Op(Opcode::kIf);
    code_.push_back(block_type);
    return *this;
  }
  CodeEmitter& If(ValType result) { return If(static_cast<uint8_t>(result)); }
  CodeEmitter& Else() { return Op(Opcode::kElse); }
  CodeEmitter& End() { return Op(Opcode::kEnd); }
  CodeEmitter& Br(uint32_t depth) {
    Op(Opcode::kBr);
    AppendLebU32(code_, depth);
    return *this;
  }
  CodeEmitter& BrIf(uint32_t depth) {
    Op(Opcode::kBrIf);
    AppendLebU32(code_, depth);
    return *this;
  }
  CodeEmitter& BrTable(const std::vector<uint32_t>& targets, uint32_t default_target) {
    Op(Opcode::kBrTable);
    AppendLebU32(code_, static_cast<uint32_t>(targets.size()));
    for (uint32_t t : targets) AppendLebU32(code_, t);
    AppendLebU32(code_, default_target);
    return *this;
  }
  CodeEmitter& Return() { return Op(Opcode::kReturn); }
  CodeEmitter& Call(uint32_t func_index) {
    Op(Opcode::kCall);
    AppendLebU32(code_, func_index);
    return *this;
  }
  CodeEmitter& Unreachable() { return Op(Opcode::kUnreachable); }
  CodeEmitter& Nop() { return Op(Opcode::kNop); }
  CodeEmitter& Drop() { return Op(Opcode::kDrop); }
  CodeEmitter& Select() { return Op(Opcode::kSelect); }

  // Variables.
  CodeEmitter& LocalGet(uint32_t index) { return OpIdx(Opcode::kLocalGet, index); }
  CodeEmitter& LocalSet(uint32_t index) { return OpIdx(Opcode::kLocalSet, index); }
  CodeEmitter& LocalTee(uint32_t index) { return OpIdx(Opcode::kLocalTee, index); }
  CodeEmitter& GlobalGet(uint32_t index) { return OpIdx(Opcode::kGlobalGet, index); }
  CodeEmitter& GlobalSet(uint32_t index) { return OpIdx(Opcode::kGlobalSet, index); }

  // Constants.
  CodeEmitter& I32Const(int32_t value) {
    Op(Opcode::kI32Const);
    AppendLebS32(code_, value);
    return *this;
  }
  CodeEmitter& I64Const(int64_t value) {
    Op(Opcode::kI64Const);
    AppendLebS64(code_, value);
    return *this;
  }
  CodeEmitter& F32Const(float value);
  CodeEmitter& F64Const(double value);

  // Frequently used numeric shorthands.
  CodeEmitter& I32Eqz() { return Op(Opcode::kI32Eqz); }
  CodeEmitter& I32Add() { return Op(Opcode::kI32Add); }
  CodeEmitter& I32Sub() { return Op(Opcode::kI32Sub); }
  CodeEmitter& I32Mul() { return Op(Opcode::kI32Mul); }

  // Memory access. align is log2 of natural alignment (hint only).
  CodeEmitter& MemOp(Opcode op, uint32_t offset, uint32_t align = 0) {
    Op(op);
    AppendLebU32(code_, align);
    AppendLebU32(code_, offset);
    return *this;
  }
  CodeEmitter& I32Load(uint32_t offset = 0) { return MemOp(Opcode::kI32Load, offset, 2); }
  CodeEmitter& I64Load(uint32_t offset = 0) { return MemOp(Opcode::kI64Load, offset, 3); }
  CodeEmitter& I32Load8U(uint32_t offset = 0) { return MemOp(Opcode::kI32Load8U, offset, 0); }
  CodeEmitter& I32Store(uint32_t offset = 0) { return MemOp(Opcode::kI32Store, offset, 2); }
  CodeEmitter& I64Store(uint32_t offset = 0) { return MemOp(Opcode::kI64Store, offset, 3); }
  CodeEmitter& I32Store8(uint32_t offset = 0) { return MemOp(Opcode::kI32Store8, offset, 0); }
  CodeEmitter& MemorySize() {
    Op(Opcode::kMemorySize);
    code_.push_back(0x00);  // memory index
    return *this;
  }
  CodeEmitter& MemoryGrow() {
    Op(Opcode::kMemoryGrow);
    code_.push_back(0x00);
    return *this;
  }
  CodeEmitter& MemoryCopy() {
    Op(Opcode::kMiscPrefix);
    AppendLebU32(code_, static_cast<uint32_t>(MiscOpcode::kMemoryCopy));
    code_.push_back(0x00);  // dst memory
    code_.push_back(0x00);  // src memory
    return *this;
  }
  CodeEmitter& MemoryFill() {
    Op(Opcode::kMiscPrefix);
    AppendLebU32(code_, static_cast<uint32_t>(MiscOpcode::kMemoryFill));
    code_.push_back(0x00);
    return *this;
  }

 private:
  CodeEmitter& OpIdx(Opcode op, uint32_t index) {
    Op(op);
    AppendLebU32(code_, index);
    return *this;
  }

  Bytes code_;
};

class ModuleBuilder {
 public:
  // Returns the index of the (deduplicated) function type.
  uint32_t AddType(FuncType type);

  // Declares an imported function; imports must precede defined functions.
  // Returns its index in the combined function index space.
  uint32_t AddImport(std::string module, std::string name, FuncType type);

  // Defines a function; `emitter` must end its body with End(). Returns the
  // index in the combined function index space.
  uint32_t AddFunction(FuncType type, std::vector<ValType> locals,
                       const CodeEmitter& emitter);

  void SetMemory(Limits limits) { module_.memory = limits; }

  uint32_t AddGlobal(ValType type, bool is_mutable, Value init);

  void ExportFunction(std::string name, uint32_t func_index);
  void ExportMemory(std::string name);

  // Adds an active data segment at `offset`.
  void AddData(uint32_t offset, Bytes bytes);

  const Module& module() const { return module_; }
  Module TakeModule() { return std::move(module_); }

  // Serializes to the WebAssembly binary format.
  Bytes Encode() const;

 private:
  Module module_;
};

}  // namespace rr::wasm
