// WebAssembly linear memory: a contiguous, byte-addressable, bounds-checked
// array that grows in 64 KiB pages (§2.1 "Linear Memory" in the paper).
//
// This is the object Roadrunner's shim reads from and writes into. All host
// access goes through the checked Read/Write/Slice APIs, which is how the
// shim "applies bounds checking before any read or write operation" (§3.1).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "wasm/types.h"

namespace rr::wasm {

class LinearMemory {
 public:
  explicit LinearMemory(Limits limits);

  uint32_t pages() const { return pages_; }
  size_t byte_size() const { return static_cast<size_t>(pages_) * kWasmPageSize; }
  const Limits& limits() const { return limits_; }

  // memory.grow semantics: returns the previous page count, or -1 when the
  // request exceeds the limit.
  int32_t Grow(uint32_t delta_pages);

  // True when [addr, addr+len) lies inside the current memory size.
  bool InBounds(uint64_t addr, uint64_t len) const {
    return addr + len <= byte_size() && addr + len >= addr;
  }

  // Guest-side typed access (used by the interpreter). Out-of-bounds access
  // is a trap, reported via Status.
  template <typename T>
  Result<T> Load(uint64_t addr) const {
    if (!InBounds(addr, sizeof(T))) {
      return TrapToStatus(TrapKind::kMemoryOutOfBounds,
                          "load at " + std::to_string(addr));
    }
    return LoadLE<T>(bytes_.data() + addr);
  }

  template <typename T>
  Status Store(uint64_t addr, T value) {
    if (!InBounds(addr, sizeof(T))) {
      return TrapToStatus(TrapKind::kMemoryOutOfBounds,
                          "store at " + std::to_string(addr));
    }
    StoreLE<T>(bytes_.data() + addr, value);
    return Status::Ok();
  }

  // Host-side bulk access (the shim's read_memory_host / write_memory_host
  // path). Copies across the sandbox boundary and is accounted as Wasm VM
  // I/O (the "penalty to access data in the Wasm VM" of Fig. 6a).
  Status Read(uint64_t addr, MutableByteSpan out) const;
  Status Write(uint64_t addr, ByteSpan data);

  // Cumulative bytes moved across the guest/host boundary via Read/Write.
  // Atomic: shims may read different regions from worker threads.
  uint64_t host_bytes_read() const {
    return host_bytes_read_.load(std::memory_order_relaxed);
  }
  uint64_t host_bytes_written() const {
    return host_bytes_written_.load(std::memory_order_relaxed);
  }

  // Zero-copy view into linear memory. The span is invalidated by Grow();
  // callers (the shim) must not hold it across guest re-entry.
  Result<ByteSpan> Slice(uint64_t addr, uint64_t len) const;
  Result<MutableByteSpan> MutableSlice(uint64_t addr, uint64_t len);

  // memory.copy / memory.fill (bulk memory proposal).
  Status Copy(uint64_t dst, uint64_t src, uint64_t len);
  Status Fill(uint64_t dst, uint8_t value, uint64_t len);

 private:
  Limits limits_;
  uint32_t pages_ = 0;
  Bytes bytes_;
  mutable std::atomic<uint64_t> host_bytes_read_{0};
  std::atomic<uint64_t> host_bytes_written_{0};
};

}  // namespace rr::wasm
