// Minimal blocking HTTP/1.1 message model, client and server.
//
// This is the transport the paper's baselines use: "serverless functions
// typically exchange data via network protocols such as HTTP, which involves
// serialization of the requested data at the source ... and deserialization
// at the target" (§1, Fig. 1a). RunC and WasmEdge workloads run over this
// stack; Roadrunner's channels bypass it entirely.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "osal/socket.h"

namespace rr::http {

// Case-insensitive header map, as header field names are case-insensitive.
struct HeaderLess {
  bool operator()(const std::string& a, const std::string& b) const;
};
using Headers = std::map<std::string, std::string, HeaderLess>;

struct Request {
  std::string method = "GET";
  std::string target = "/";
  Headers headers;
  Bytes body;
};

struct Response {
  int status_code = 200;
  std::string reason = "OK";
  Headers headers;
  Bytes body;
};

// Serializes messages to wire format (Content-Length framing only).
Bytes EncodeRequest(const Request& request);
Bytes EncodeResponse(const Response& response);

// Reads one full message from a connection.
Result<Request> ReadRequest(osal::Connection& conn);
Result<Response> ReadResponse(osal::Connection& conn);

// Writes a message to a connection.
Status WriteRequest(osal::Connection& conn, const Request& request);
Status WriteResponse(osal::Connection& conn, const Response& response);

// Blocking single-connection client: connect, send, await response.
Result<Response> Fetch(const std::string& host, uint16_t port, const Request& request);

// Reusable keep-alive client connection.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, uint16_t port);

  Result<Response> RoundTrip(const Request& request);

 private:
  explicit Client(osal::Connection conn) : conn_(std::move(conn)) {}
  osal::Connection conn_;
};

}  // namespace rr::http
