// Event-driven HTTP/1.1 server: one epoll loop, thousands of connections.
//
// The blocking server in server.h spends a thread per connection — fine for
// the paper-baseline measurements it serves, hopeless as a front door. This
// server multiplexes every connection onto a single epoll(7) loop: reads
// feed the incremental RequestParser, parsed requests are handed to the
// Handler together with a Responder, and responses stream back through
// vectored writes over the response head plus the rr::Buffer body chunks —
// payload bytes are never copied into a wire staging buffer.
//
// ## Threading contract
//
//  * The Handler runs on the event-loop thread. It must not block; it either
//    answers inline (Responder::Send before returning) or stashes the
//    Responder and completes later from any thread.
//  * Responder is the one async escape hatch: thread-safe, one-shot,
//    outlive-safe. Sending after the server stopped, or dropping the last
//    copy without sending (the server then answers 500), are both benign.
//
// ## Flow control
//
//  * Pipelined requests are answered strictly in request order, whatever
//    order their completions land in.
//  * A connection with max_pipeline_depth unanswered requests stops being
//    read (EPOLLIN parked) until responses drain — a pipelining client
//    cannot queue unbounded work.
//  * Parser failures answer with the parser's HTTP status and close; a peer
//    that disappears mid-message is torn down without a response.
//  * Connections idle past idle_timeout with nothing in flight are swept.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/buffer.h"
#include "common/status.h"
#include "http/parser.h"
#include "osal/socket.h"

namespace rr::http {

// A response whose body shares payload chunks instead of owning flat bytes.
// A run result Buffer drops in directly; the wire write gathers its chunks.
struct StreamResponse {
  int status_code = 200;
  std::string reason = "OK";
  Headers headers;
  Buffer body;

  StreamResponse() = default;
  StreamResponse(int code, std::string reason_phrase)
      : status_code(code), reason(std::move(reason_phrase)) {}

  // Adopts a flat response's body storage (no copy).
  static StreamResponse From(Response&& response);
};

class EpollServer {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = ephemeral
    osal::BindAddress bind_address = osal::BindAddress::kLoopback;
    // Accepts beyond this are answered 503 and closed immediately.
    size_t max_connections = 8192;
    // Unanswered parsed requests per connection before reads pause.
    size_t max_pipeline_depth = 32;
    Nanos idle_timeout = std::chrono::seconds(60);
    ParserLimits parser_limits{};
  };

  // One-shot, thread-safe completion handle for a single request.
  class Responder {
   public:
    Responder() = default;

    // Queues the response toward the wire and wakes the loop. Only the
    // first Send per request wins; later calls are no-ops, as is sending
    // to a stopped server.
    void Send(StreamResponse&& response) const;

   private:
    friend class EpollServer;
    struct State;
    explicit Responder(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  using Handler = std::function<void(Request&&, Responder)>;

  static Result<std::unique_ptr<EpollServer>> Start(Options options,
                                                    Handler handler);
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  uint16_t port() const;

  // Live connection count (observability + tests).
  size_t active_connections() const;

  // Stops accepting, wakes the loop, joins it, closes every connection.
  // Idempotent.
  void Stop();

 private:
  struct Impl;
  explicit EpollServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace rr::http
