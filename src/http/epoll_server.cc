#include "http/epoll_server.h"

#include <sys/socket.h>
#include <sys/uio.h>

#include <atomic>
#include <cerrno>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"
#include "osal/poll.h"
#include "osal/reactor.h"

namespace rr::http {
namespace {

constexpr size_t kMaxIov = 64;

const char* ReasonFor(int code) {
  switch (code) {
    case 400: return "Bad Request";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

}  // namespace

StreamResponse StreamResponse::From(Response&& response) {
  StreamResponse out(response.status_code, std::move(response.reason));
  out.headers = std::move(response.headers);
  if (!response.body.empty()) out.body = Buffer::Adopt(std::move(response.body));
  return out;
}

// A completed (conn, seq, response) triple on its way back to the loop.
struct Completion {
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  StreamResponse response;
};

struct EpollServer::Responder::State {
  // The reactor shared_ptr keeps Post valid (a benign no-op once stopped)
  // however long a handler stashes the Responder; the Impl pointer is only
  // ever dereferenced by a task the still-running loop executes, and the
  // Impl outlives its reactor's loop by construction (Stop joins first).
  std::shared_ptr<osal::Reactor> reactor;
  Impl* impl = nullptr;
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  std::atomic<bool> sent{false};

  void Push(Completion&& completion) const;

  ~State() {
    // A handler that dropped its Responder without answering would wedge
    // the connection's response pipeline; answer for it.
    if (!sent.load(std::memory_order_acquire)) {
      Push({conn_id, seq, StreamResponse(500, ReasonFor(500))});
    }
  }
};

void EpollServer::Responder::Send(StreamResponse&& response) const {
  if (!state_) return;
  if (state_->sent.exchange(true, std::memory_order_acq_rel)) return;
  state_->Push({state_->conn_id, state_->seq, std::move(response)});
}

struct EpollServer::Impl {
  // A response awaiting its turn on the wire (strict request order).
  struct Slot {
    uint64_t seq = 0;
    bool ready = false;
    bool close_after = false;
    StreamResponse response;
  };

  struct Conn {
    osal::UniqueFd fd;
    RequestParser parser;
    std::deque<Slot> slots;
    uint64_t next_seq = 0;
    TimePoint last_activity;
    // Write cursor over the in-flight response: head string first, then the
    // body Buffer's chunks, gathered by writev without staging copies.
    bool write_active = false;
    bool close_after_current = false;
    std::string head;
    size_t head_off = 0;
    Buffer body;
    size_t body_chunk = 0;
    size_t chunk_off = 0;
    // reactor interest mirror.
    bool reading = true;
    bool want_write = false;
    bool peer_half_closed = false;

    Conn(osal::UniqueFd f, ParserLimits limits)
        : fd(std::move(f)), parser(limits), last_activity(Now()) {}
  };

  Impl(Options opts, Handler h, osal::TcpListener l,
       std::shared_ptr<osal::Reactor> r)
      : options(opts),
        handler(std::move(h)),
        listener(std::move(l)),
        reactor(std::move(r)) {}

  void AcceptAll() {  // rr-lint: reactor-thread
    while (true) {
      Result<osal::Connection> accepted = listener.TryAccept();
      if (!accepted.ok()) return;  // transient accept failure; retry on event
      if (!accepted->valid()) return;
      if (conns.size() >= options.max_connections) {
        static constexpr char kOverload[] =
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n"
            "Connection: close\r\n\r\n";
        (void)::send(accepted->fd(), kOverload, sizeof(kOverload) - 1,
                     MSG_DONTWAIT | MSG_NOSIGNAL);
        continue;  // dtor closes
      }
      accepted->SetNoDelay(true);
      const uint64_t id = next_conn_id++;
      Conn conn(accepted->TakeFd(), options.parser_limits);
      const int fd = conn.fd.get();
      if (!reactor
               ->Add(fd, osal::Epoll::kReadable,
                     [this, id](uint32_t events) { OnConnEvent(id, events); })
               .ok()) {
        continue;
      }
      conns.emplace(id, std::move(conn));
      active.store(conns.size(), std::memory_order_relaxed);
    }
  }

  using ConnMap = std::unordered_map<uint64_t, Conn>;

  void OnConnEvent(uint64_t id, uint32_t events) {  // rr-lint: reactor-thread
    auto it = conns.find(id);
    if (it == conns.end()) return;
    if (events & osal::Epoll::kError) {
      CloseConn(it);
      return;
    }
    bool open = true;
    if (events & osal::Epoll::kReadable) {
      open = HandleReadable(id, it->second);
    }
    if (open && (events & osal::Epoll::kWritable)) {
      // Re-find not needed: HandleReadable never inserts, so `it` stays
      // valid while the connection is open.
      (void)FlushWrites(id, it->second);
    }
  }

  void CloseConn(ConnMap::iterator it) {
    (void)reactor->Remove(it->second.fd.get());
    conns.erase(it);
    active.store(conns.size(), std::memory_order_relaxed);
  }

  void CloseConn(uint64_t id) {
    auto it = conns.find(id);
    if (it != conns.end()) CloseConn(it);
  }

  void UpdateInterest(uint64_t /*id*/, Conn& conn) {
    uint32_t events = 0;
    if (conn.reading) events |= osal::Epoll::kReadable;
    if (conn.want_write) events |= osal::Epoll::kWritable;
    (void)reactor->Modify(conn.fd.get(), events);
  }

  void Dispatch(uint64_t id, Conn& conn, Request&& request) {
    Slot slot;
    slot.seq = conn.next_seq++;
    conn.slots.push_back(std::move(slot));
    auto state = std::make_shared<Responder::State>();
    state->reactor = reactor;
    state->impl = this;
    state->conn_id = id;
    state->seq = conn.slots.back().seq;
    handler(std::move(request), Responder(std::move(state)));
  }

  // Returns false if the connection was closed.
  bool HandleReadable(uint64_t id, Conn& conn) {
    uint8_t buf[64 * 1024];
    while (true) {
      // Never blocks: TryAccept hands out O_NONBLOCK sockets.
      // rr-lint: allow(reactor-blocking)
      const ssize_t r = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        CloseConn(id);
        return false;
      }
      if (r == 0) {
        // Peer EOF. Mid-message it truncated a request — nothing sane to
        // answer, tear down. Between messages, flush what is owed and
        // close when the pipeline drains.
        if (!conn.parser.idle() && !conn.parser.failed()) {
          CloseConn(id);
          return false;
        }
        conn.peer_half_closed = true;
        if (conn.slots.empty() && !conn.write_active) {
          CloseConn(id);
          return false;
        }
        conn.reading = false;
        UpdateInterest(id, conn);
        break;
      }
      conn.last_activity = Now();
      std::vector<Request> requests;
      const Status status =
          conn.parser.Feed(ByteSpan(buf, static_cast<size_t>(r)), &requests);
      for (auto& request : requests) Dispatch(id, conn, std::move(request));
      if (!status.ok()) {
        // Answer the parse failure in-order behind any good pipelined
        // requests, then close. The read side is done: the stream is
        // unframeable past the error.
        Slot slot;
        slot.seq = conn.next_seq++;
        slot.ready = true;
        slot.close_after = true;
        slot.response = StreamResponse(conn.parser.error_status_code(),
                                       ReasonFor(conn.parser.error_status_code()));
        conn.slots.push_back(std::move(slot));
        conn.reading = false;
        UpdateInterest(id, conn);
        break;
      }
      if (conn.slots.size() >= options.max_pipeline_depth) {
        // Backpressure: stop reading until responses drain.
        conn.reading = false;
        UpdateInterest(id, conn);
        break;
      }
      if (static_cast<size_t>(r) < sizeof(buf)) break;  // drained the socket
    }
    return FlushWrites(id, conn);
  }

  void StartWrite(Conn& conn) {
    Slot slot = std::move(conn.slots.front());
    conn.slots.pop_front();
    StreamResponse& response = slot.response;
    std::string head;
    head.reserve(256);
    head += "HTTP/1.1 ";
    head += std::to_string(response.status_code);
    head += ' ';
    head += response.reason;
    head += "\r\n";
    for (const auto& [name, value] : response.headers) {
      // The server owns framing and connection lifecycle headers.
      if (EqualsIgnoreCase(name, "Content-Length") ||
          EqualsIgnoreCase(name, "Connection")) {
        continue;
      }
      head += name;
      head += ": ";
      head += value;
      head += "\r\n";
    }
    head += "Content-Length: ";
    head += std::to_string(response.body.size());
    head += "\r\n";
    if (slot.close_after) head += "Connection: close\r\n";
    head += "\r\n";
    conn.head = std::move(head);
    conn.head_off = 0;
    conn.body = std::move(response.body);
    conn.body_chunk = 0;
    conn.chunk_off = 0;
    conn.write_active = true;
    conn.close_after_current = slot.close_after;
  }

  void AdvanceWrite(Conn& conn, size_t written) {
    if (conn.head_off < conn.head.size()) {
      const size_t take = std::min(written, conn.head.size() - conn.head_off);
      conn.head_off += take;
      written -= take;
    }
    while (written > 0) {
      const ByteSpan span = conn.body.chunk(conn.body_chunk);
      const size_t take = std::min(written, span.size() - conn.chunk_off);
      conn.chunk_off += take;
      written -= take;
      if (conn.chunk_off == span.size()) {
        ++conn.body_chunk;
        conn.chunk_off = 0;
      }
    }
  }

  // Returns false if the connection was closed.
  bool FlushWrites(uint64_t id, Conn& conn) {
    while (true) {
      if (!conn.write_active) {
        if (conn.slots.empty() || !conn.slots.front().ready) break;
        StartWrite(conn);
      }
      iovec iov[kMaxIov];
      int iov_count = 0;
      if (conn.head_off < conn.head.size()) {
        iov[iov_count++] = {conn.head.data() + conn.head_off,
                            conn.head.size() - conn.head_off};
      }
      size_t chunk = conn.body_chunk;
      size_t offset = conn.chunk_off;
      while (iov_count < static_cast<int>(kMaxIov) &&
             chunk < conn.body.chunk_count()) {
        const ByteSpan span = conn.body.chunk(chunk);
        if (span.size() > offset) {
          iov[iov_count++] = {
              const_cast<uint8_t*>(span.data()) + offset, span.size() - offset};
        }
        offset = 0;
        ++chunk;
      }
      if (iov_count == 0) {
        // Response fully on the wire.
        conn.write_active = false;
        conn.head.clear();
        conn.body = Buffer();
        if (conn.close_after_current) {
          CloseConn(id);
          return false;
        }
        MaybeResumeReading(id, conn);
        continue;
      }
      const ssize_t written = ::writev(conn.fd.get(), iov, iov_count);
      if (written < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn.want_write) {
            conn.want_write = true;
            UpdateInterest(id, conn);
          }
          return true;
        }
        CloseConn(id);
        return false;
      }
      conn.last_activity = Now();
      AdvanceWrite(conn, static_cast<size_t>(written));
    }
    // Nothing writable right now.
    if (conn.want_write) {
      conn.want_write = false;
      UpdateInterest(id, conn);
    }
    if (conn.peer_half_closed && conn.slots.empty() && !conn.write_active) {
      CloseConn(id);
      return false;
    }
    return true;
  }

  void MaybeResumeReading(uint64_t id, Conn& conn) {
    if (conn.reading || conn.peer_half_closed || conn.parser.failed()) return;
    if (conn.slots.size() >= options.max_pipeline_depth) return;
    conn.reading = true;
    UpdateInterest(id, conn);
  }

  // Runs on the loop thread (posted by Responder): matches the completion
  // to its slot and flushes.
  void Complete(Completion&& completion) {
    auto it = conns.find(completion.conn_id);
    if (it == conns.end()) return;  // connection died while executing
    for (auto& slot : it->second.slots) {
      if (slot.seq == completion.seq) {
        if (!slot.ready) {
          slot.ready = true;
          slot.response = std::move(completion.response);
        }
        break;
      }
    }
    (void)FlushWrites(completion.conn_id, it->second);
  }

  void SweepIdle(TimePoint now) {  // rr-lint: reactor-thread
    for (auto it = conns.begin(); it != conns.end();) {
      Conn& conn = it->second;
      const bool quiescent = conn.slots.empty() && !conn.write_active;
      if (quiescent && now - conn.last_activity > options.idle_timeout) {
        auto victim = it++;
        CloseConn(victim);
      } else {
        ++it;
      }
    }
  }

  void Stop() {
    bool expected = false;
    if (!stopped.compare_exchange_strong(expected, true)) return;
    // Joining the reactor both stops the loop and fences Responder tasks:
    // after this no posted completion can ever run, so the conns teardown
    // below races nothing.
    reactor->Stop();
    conns.clear();
  }

  Options options;
  Handler handler;
  osal::TcpListener listener;
  std::shared_ptr<osal::Reactor> reactor;
  ConnMap conns;
  uint64_t next_conn_id = 1;
  std::atomic<bool> stopped{false};
  std::atomic<size_t> active{0};
};

void EpollServer::Responder::State::Push(Completion&& completion) const {
  if (!reactor) return;
  reactor->Post(
      [impl = impl, c = std::move(completion)]() mutable {
        impl->Complete(std::move(c));
      });
}

Result<std::unique_ptr<EpollServer>> EpollServer::Start(Options options,
                                                        Handler handler) {
  auto listener = osal::TcpListener::Bind(options.port, options.bind_address);
  RR_RETURN_IF_ERROR(listener.status());
  RR_RETURN_IF_ERROR(osal::SetNonBlocking(listener->fd(), true));
  auto reactor = osal::Reactor::Start("http-epoll");
  RR_RETURN_IF_ERROR(reactor.status());
  auto impl = std::make_unique<Impl>(options, std::move(handler),
                                     std::move(*listener), std::move(*reactor));
  Impl* const raw = impl.get();
  const Status listen_status =
      raw->reactor->Add(raw->listener.fd(), osal::Epoll::kReadable,
                        [raw](uint32_t) { raw->AcceptAll(); });
  if (!listen_status.ok()) {
    raw->reactor->Stop();
    return listen_status;
  }
  raw->reactor->AddTicker(
      std::min<Nanos>(options.idle_timeout, std::chrono::seconds(1)),
      [raw] { raw->SweepIdle(Now()); });
  return std::unique_ptr<EpollServer>(new EpollServer(std::move(impl)));
}

EpollServer::EpollServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

EpollServer::~EpollServer() {
  if (impl_) impl_->Stop();
}

void EpollServer::Stop() { impl_->Stop(); }

uint16_t EpollServer::port() const { return impl_->listener.port(); }

size_t EpollServer::active_connections() const {
  return impl_->active.load(std::memory_order_relaxed);
}

}  // namespace rr::http
