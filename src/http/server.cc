#include "http/server.h"

#include <sys/socket.h>

#include "common/log.h"
#include "common/strings.h"

namespace rr::http {

Result<std::unique_ptr<Server>> Server::Start(uint16_t port, Handler handler) {
  RR_ASSIGN_OR_RETURN(osal::TcpListener listener, osal::TcpListener::Bind(port));
  auto server = std::unique_ptr<Server>(
      new Server(std::move(listener), std::move(handler)));
  server->accept_thread_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  if (stopping_.exchange(true)) return;
  // Unblock accept4 by shutting the listener down.
  ::shutdown(listener_.fd(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    MutexLock lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      if (!stopping_.load()) {
        RR_LOG(Warning) << "accept failed: " << conn.status();
      }
      return;
    }
    conn->SetNoDelay(true);
    MutexLock lock(workers_mutex_);
    workers_.emplace_back(
        [this, c = std::move(*conn)]() mutable { ServeConnection(std::move(c)); });
  }
}

void Server::ServeConnection(osal::Connection conn) {
  while (!stopping_.load()) {
    auto request = ReadRequest(conn);
    if (!request.ok()) {
      // Peer closed between requests: normal keep-alive teardown.
      if (request.status().code() != StatusCode::kUnavailable) {
        RR_LOG(Debug) << "request read failed: " << request.status();
      }
      return;
    }
    const bool close_after =
        request->headers.count("Connection") != 0 &&
        EqualsIgnoreCase(request->headers["Connection"], "close");

    Response response = handler_(*request);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (!WriteResponse(conn, response).ok()) return;
    if (close_after) return;
  }
}

}  // namespace rr::http
