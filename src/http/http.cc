#include "http/http.h"

#include <algorithm>

#include "common/strings.h"

namespace rr::http {
namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr uint64_t kMaxBodyBytes = uint64_t{4} * 1024 * 1024 * 1024;

void AppendHeaders(std::string& out, const Headers& headers, size_t body_size) {
  bool has_content_length = false;
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
    if (EqualsIgnoreCase(name, "Content-Length")) has_content_length = true;
  }
  if (!has_content_length) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}

// Reads from `conn` until the end of the header block; returns the header
// text and any body bytes that arrived in the same reads.
struct HeaderBlock {
  std::string text;
  Bytes body_prefix;
};

Result<HeaderBlock> ReadHeaderBlock(osal::Connection& conn) {
  std::string buffer;
  uint8_t chunk[4096];
  while (true) {
    const size_t scan_from = buffer.size() >= 3 ? buffer.size() - 3 : 0;
    RR_ASSIGN_OR_RETURN(const size_t n, conn.ReceiveSome(chunk));
    if (n == 0) {
      if (buffer.empty()) return UnavailableError("connection closed");
      return DataLossError("connection closed mid-headers");
    }
    buffer.append(reinterpret_cast<char*>(chunk), n);
    const size_t end = buffer.find("\r\n\r\n", scan_from);
    if (end != std::string::npos) {
      HeaderBlock block;
      block.text = buffer.substr(0, end);
      const size_t body_start = end + 4;
      block.body_prefix.assign(buffer.begin() + static_cast<long>(body_start),
                               buffer.end());
      return block;
    }
    if (buffer.size() > kMaxHeaderBytes) {
      return ResourceExhaustedError("HTTP headers too large");
    }
  }
}

Status ParseHeaderLines(std::string_view text, Headers* headers) {
  for (const std::string_view line : Split(text, '\n')) {
    const std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    const size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      return InvalidArgumentError("malformed header line");
    }
    (*headers)[std::string(TrimWhitespace(trimmed.substr(0, colon)))] =
        std::string(TrimWhitespace(trimmed.substr(colon + 1)));
  }
  return Status::Ok();
}

Result<Bytes> ReadBody(osal::Connection& conn, const Headers& headers,
                       Bytes prefix) {
  const auto it = headers.find("Content-Length");
  uint64_t length = 0;
  if (it != headers.end() && !ParseUint64(it->second, &length)) {
    return InvalidArgumentError("bad Content-Length: " + it->second);
  }
  if (length > kMaxBodyBytes) {
    return ResourceExhaustedError("HTTP body too large");
  }
  if (prefix.size() > length) {
    return InvalidArgumentError("body longer than Content-Length");
  }
  Bytes body = std::move(prefix);
  const size_t have = body.size();
  body.resize(length);
  if (length > have) {
    RR_RETURN_IF_ERROR(
        conn.Receive(MutableByteSpan(body.data() + have, length - have)));
  }
  return body;
}

}  // namespace

bool HeaderLess::operator()(const std::string& a, const std::string& b) const {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(), [](char x, char y) {
        return std::tolower(static_cast<unsigned char>(x)) <
               std::tolower(static_cast<unsigned char>(y));
      });
}

Bytes EncodeRequest(const Request& request) {
  std::string head = request.method + " " + request.target + " HTTP/1.1\r\n";
  AppendHeaders(head, request.headers, request.body.size());
  Bytes out = ToBytes(head);
  AppendBytes(out, request.body);
  return out;
}

Bytes EncodeResponse(const Response& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status_code) + " " +
                     response.reason + "\r\n";
  AppendHeaders(head, response.headers, response.body.size());
  Bytes out = ToBytes(head);
  AppendBytes(out, response.body);
  return out;
}

Result<Request> ReadRequest(osal::Connection& conn) {
  RR_ASSIGN_OR_RETURN(HeaderBlock block, ReadHeaderBlock(conn));
  const size_t line_end = block.text.find("\r\n");
  const std::string_view request_line =
      std::string_view(block.text).substr(0, line_end);
  const auto parts = Split(request_line, ' ');
  if (parts.size() != 3 || !StartsWith(std::string(parts[2]), "HTTP/1.")) {
    return InvalidArgumentError("malformed request line: " +
                                std::string(request_line));
  }
  Request request;
  request.method = std::string(parts[0]);
  request.target = std::string(parts[1]);
  if (line_end != std::string::npos) {
    RR_RETURN_IF_ERROR(ParseHeaderLines(
        std::string_view(block.text).substr(line_end + 2), &request.headers));
  }
  RR_ASSIGN_OR_RETURN(request.body,
                      ReadBody(conn, request.headers, std::move(block.body_prefix)));
  return request;
}

Result<Response> ReadResponse(osal::Connection& conn) {
  RR_ASSIGN_OR_RETURN(HeaderBlock block, ReadHeaderBlock(conn));
  const size_t line_end = block.text.find("\r\n");
  const std::string_view status_line =
      std::string_view(block.text).substr(0, line_end);
  const auto parts = Split(status_line, ' ');
  if (parts.size() < 2 || !StartsWith(std::string(parts[0]), "HTTP/1.")) {
    return InvalidArgumentError("malformed status line: " +
                                std::string(status_line));
  }
  Response response;
  uint64_t code = 0;
  if (!ParseUint64(parts[1], &code) || code < 100 || code > 599) {
    return InvalidArgumentError("bad status code");
  }
  response.status_code = static_cast<int>(code);
  response.reason = parts.size() > 2 ? std::string(parts[2]) : "";
  if (line_end != std::string::npos) {
    RR_RETURN_IF_ERROR(ParseHeaderLines(
        std::string_view(block.text).substr(line_end + 2), &response.headers));
  }
  RR_ASSIGN_OR_RETURN(response.body,
                      ReadBody(conn, response.headers, std::move(block.body_prefix)));
  return response;
}

Status WriteRequest(osal::Connection& conn, const Request& request) {
  // Gathered write: the (potentially large) body is never copied into an
  // assembled message buffer.
  std::string head = request.method + " " + request.target + " HTTP/1.1\r\n";
  AppendHeaders(head, request.headers, request.body.size());
  return conn.SendParts({AsBytes(head), ByteSpan(request.body)});
}

Status WriteResponse(osal::Connection& conn, const Response& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status_code) + " " +
                     response.reason + "\r\n";
  AppendHeaders(head, response.headers, response.body.size());
  return conn.SendParts({AsBytes(head), ByteSpan(response.body)});
}

Result<Response> Fetch(const std::string& host, uint16_t port,
                       const Request& request) {
  RR_ASSIGN_OR_RETURN(Client client, Client::Connect(host, port));
  return client.RoundTrip(request);
}

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, osal::TcpConnect(host, port));
  conn.SetNoDelay(true);
  return Client(std::move(conn));
}

Result<Response> Client::RoundTrip(const Request& request) {
  RR_RETURN_IF_ERROR(WriteRequest(conn_, request));
  return ReadResponse(conn_);
}

}  // namespace rr::http
