#include "http/parser.h"

#include <algorithm>

#include "common/strings.h"

namespace rr::http {
namespace {

constexpr std::string_view kHeadTerminator = "\r\n\r\n";

bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), IsTokenChar);
}

bool HasCtlOrSpace(std::string_view s) {
  return std::any_of(s.begin(), s.end(), [](char c) {
    const auto u = static_cast<unsigned char>(c);
    return u <= 0x20 || u == 0x7f;
  });
}

// Splits a head block into its first line and header lines, enforcing the
// shared header-field rules. Single-valued fields (framing and identity)
// must not repeat — two Content-Lengths is a classic request-smuggling
// shape — while repeatable fields merge into a comma-separated list, which
// is the RFC 7230 §3.2.2 equivalence.
bool IsSingleValued(std::string_view name) {
  return EqualsIgnoreCase(name, "Content-Length") ||
         EqualsIgnoreCase(name, "Host") ||
         EqualsIgnoreCase(name, "Authorization");
}

Status ParseHeaderFields(std::string_view block, Headers* headers) {
  // `block` excludes the first line and its CRLF; lines are CRLF-separated.
  while (!block.empty()) {
    const size_t eol = block.find("\r\n");
    const std::string_view line =
        eol == std::string_view::npos ? block : block.substr(0, eol);
    block = eol == std::string_view::npos ? std::string_view{}
                                          : block.substr(eol + 2);
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      return InvalidArgumentError("obsolete header line folding");
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return InvalidArgumentError("header line without a colon");
    }
    const std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) {
      return InvalidArgumentError("malformed header field name");
    }
    const std::string_view value = TrimWhitespace(line.substr(colon + 1));
    auto [it, inserted] = headers->emplace(std::string(name), std::string(value));
    if (!inserted) {
      if (IsSingleValued(name)) {
        return InvalidArgumentError("duplicate " + std::string(name) +
                                    " header");
      }
      it->second += ", ";
      it->second += value;
    }
  }
  return Status::Ok();
}

// Framing from the parsed headers: Content-Length only. A request that
// declares any Transfer-Encoding is refused as unimplemented rather than
// guessed at — mis-framing is how desyncs start.
Result<uint64_t> DeclaredBodyLength(const Headers& headers,
                                    uint64_t max_body_bytes) {
  if (headers.count("Transfer-Encoding") != 0) {
    return UnimplementedError("Transfer-Encoding is not supported");
  }
  const auto it = headers.find("Content-Length");
  if (it == headers.end()) return uint64_t{0};
  uint64_t length = 0;
  if (!ParseUint64(it->second, &length)) {
    return InvalidArgumentError("bad Content-Length: " + it->second);
  }
  if (length > max_body_bytes) {
    return ResourceExhaustedError("declared body exceeds the limit");
  }
  return length;
}

}  // namespace

// --- RequestParser ----------------------------------------------------------

Status RequestParser::Fail(int http_status, Status status) {
  state_ = State::kError;
  error_status_ = http_status;
  error_ = std::move(status);
  buffer_.clear();
  buffer_.shrink_to_fit();
  current_ = Request{};
  return error_;
}

Status RequestParser::Feed(ByteSpan data, std::vector<Request>* out) {
  if (state_ == State::kError) return error_;
  size_t i = 0;
  while (i < data.size()) {
    if (state_ == State::kBody && buffer_.empty()) {
      // Fast path: body bytes append straight from the feed span, without
      // a detour through the head buffer.
      const size_t take = static_cast<size_t>(std::min<uint64_t>(
          body_remaining_, data.size() - i));
      current_.body.insert(current_.body.end(), data.begin() + i,
                           data.begin() + i + take);
      body_remaining_ -= take;
      i += take;
      if (body_remaining_ == 0) {
        out->push_back(std::move(current_));
        current_ = Request{};
        state_ = State::kHead;
      }
      continue;
    }
    // Head bytes (and any body prefix that shared a read with them)
    // accumulate in buffer_ until the terminator shows up.
    buffer_.append(reinterpret_cast<const char*>(data.data() + i),
                   data.size() - i);
    i = data.size();
    RR_RETURN_IF_ERROR(DrainBuffer(out));
  }
  return Status::Ok();
}

Status RequestParser::DrainBuffer(std::vector<Request>* out) {
  while (!buffer_.empty()) {
    if (state_ == State::kBody) {
      const size_t take = static_cast<size_t>(std::min<uint64_t>(
          body_remaining_, buffer_.size()));
      current_.body.insert(current_.body.end(), buffer_.begin(),
                           buffer_.begin() + take);
      buffer_.erase(0, take);
      body_remaining_ -= take;
      if (body_remaining_ > 0) return Status::Ok();  // buffer drained
      out->push_back(std::move(current_));
      current_ = Request{};
      state_ = State::kHead;
      continue;
    }
    // Between messages: tolerate stray CRLFs (RFC 7230 §3.5).
    size_t start = 0;
    while (start + 1 < buffer_.size() && buffer_[start] == '\r' &&
           buffer_[start + 1] == '\n') {
      start += 2;
    }
    if (start > 0) buffer_.erase(0, start);
    if (buffer_.size() == 1 && buffer_[0] == '\r') return Status::Ok();
    const size_t end = buffer_.find(kHeadTerminator);
    if (end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return Fail(431, ResourceExhaustedError("header block too large"));
      }
      return Status::Ok();  // need more bytes
    }
    if (end + kHeadTerminator.size() > limits_.max_header_bytes) {
      return Fail(431, ResourceExhaustedError("header block too large"));
    }
    RR_RETURN_IF_ERROR(ParseHead(std::string_view(buffer_).substr(0, end)));
    buffer_.erase(0, end + kHeadTerminator.size());
    state_ = State::kBody;  // zero-length bodies complete on the next pass
  }
  // An empty buffer with a completed zero-length body still needs emitting.
  if (state_ == State::kBody && body_remaining_ == 0) {
    out->push_back(std::move(current_));
    current_ = Request{};
    state_ = State::kHead;
  }
  return Status::Ok();
}

Status RequestParser::ParseHead(std::string_view head) {
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const auto parts = Split(request_line, ' ');
  if (parts.size() != 3) {
    return Fail(400, InvalidArgumentError("malformed request line: " +
                                          std::string(request_line)));
  }
  const std::string_view method = parts[0];
  const std::string_view target = parts[1];
  const std::string_view version = parts[2];
  if (!IsToken(method)) {
    return Fail(400, InvalidArgumentError("malformed method token"));
  }
  if (target.empty() || HasCtlOrSpace(target)) {
    return Fail(400, InvalidArgumentError("malformed request target"));
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Fail(400, InvalidArgumentError("unsupported HTTP version: " +
                                          std::string(version)));
  }
  current_ = Request{};
  current_.method = std::string(method);
  current_.target = std::string(target);
  if (line_end != std::string_view::npos) {
    Status fields =
        ParseHeaderFields(head.substr(line_end + 2), &current_.headers);
    if (!fields.ok()) return Fail(400, std::move(fields));
  }
  Result<uint64_t> length =
      DeclaredBodyLength(current_.headers, limits_.max_body_bytes);
  if (!length.ok()) {
    switch (length.status().code()) {
      case StatusCode::kResourceExhausted:
        return Fail(413, length.status());
      case StatusCode::kUnimplemented:
        return Fail(501, length.status());
      default:
        return Fail(400, length.status());
    }
  }
  body_remaining_ = *length;
  current_.body.reserve(static_cast<size_t>(*length));
  return Status::Ok();
}

// --- ResponseParser ---------------------------------------------------------

Status ResponseParser::Fail(Status status) {
  state_ = State::kError;
  error_ = std::move(status);
  buffer_.clear();
  return error_;
}

Status ResponseParser::Feed(ByteSpan data, std::vector<Response>* out) {
  if (state_ == State::kError) return error_;
  size_t i = 0;
  while (i < data.size()) {
    if (state_ == State::kBody && buffer_.empty()) {
      const size_t take = static_cast<size_t>(std::min<uint64_t>(
          body_remaining_, data.size() - i));
      current_.body.insert(current_.body.end(), data.begin() + i,
                           data.begin() + i + take);
      body_remaining_ -= take;
      i += take;
      if (body_remaining_ == 0) {
        out->push_back(std::move(current_));
        current_ = Response{};
        state_ = State::kHead;
      }
      continue;
    }
    buffer_.append(reinterpret_cast<const char*>(data.data() + i),
                   data.size() - i);
    i = data.size();
    RR_RETURN_IF_ERROR(DrainBuffer(out));
  }
  return Status::Ok();
}

Status ResponseParser::DrainBuffer(std::vector<Response>* out) {
  while (!buffer_.empty()) {
    if (state_ == State::kBody) {
      const size_t take = static_cast<size_t>(std::min<uint64_t>(
          body_remaining_, buffer_.size()));
      current_.body.insert(current_.body.end(), buffer_.begin(),
                           buffer_.begin() + take);
      buffer_.erase(0, take);
      body_remaining_ -= take;
      if (body_remaining_ > 0) return Status::Ok();
      out->push_back(std::move(current_));
      current_ = Response{};
      state_ = State::kHead;
      continue;
    }
    const size_t end = buffer_.find(kHeadTerminator);
    if (end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return Fail(ResourceExhaustedError("header block too large"));
      }
      return Status::Ok();
    }
    RR_RETURN_IF_ERROR(ParseHead(std::string_view(buffer_).substr(0, end)));
    buffer_.erase(0, end + kHeadTerminator.size());
    state_ = State::kBody;
  }
  if (state_ == State::kBody && body_remaining_ == 0) {
    out->push_back(std::move(current_));
    current_ = Response{};
    state_ = State::kHead;
  }
  return Status::Ok();
}

Status ResponseParser::ParseHead(std::string_view head) {
  const size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const auto parts = Split(status_line, ' ');
  if (parts.size() < 2 || !StartsWith(std::string(parts[0]), "HTTP/1.")) {
    return Fail(InvalidArgumentError("malformed status line: " +
                                     std::string(status_line)));
  }
  uint64_t code = 0;
  if (!ParseUint64(parts[1], &code) || code < 100 || code > 599) {
    return Fail(InvalidArgumentError("bad status code"));
  }
  current_ = Response{};
  current_.status_code = static_cast<int>(code);
  // The reason phrase may itself contain spaces; keep everything after the
  // code verbatim.
  if (parts.size() > 2) {
    const size_t reason_at = parts[0].size() + 1 + parts[1].size() + 1;
    current_.reason = std::string(status_line.substr(reason_at));
  }
  if (line_end != std::string_view::npos) {
    Status fields =
        ParseHeaderFields(head.substr(line_end + 2), &current_.headers);
    if (!fields.ok()) return Fail(std::move(fields));
  }
  Result<uint64_t> length =
      DeclaredBodyLength(current_.headers, limits_.max_body_bytes);
  if (!length.ok()) return Fail(length.status());
  body_remaining_ = *length;
  current_.body.reserve(static_cast<size_t>(*length));
  return Status::Ok();
}

}  // namespace rr::http
