// Incremental (push) HTTP/1.1 message parsers for event-driven servers.
//
// The blocking reader in http.h owns its connection and parks on read(2)
// until a full message arrives — one thread per connection. The epoll
// server inverts that: the event loop reads whatever bytes are ready and
// *feeds* them to a per-connection parser, which emits zero or more
// complete messages per feed (pipelined requests arrive together) and
// retains partial state between feeds.
//
// Hardening contract: every malformed input fails with a typed Status and
// an HTTP status code to answer with (400 malformed syntax, 413 oversized
// body, 431 oversized header block, 501 unimplemented framing), the parser
// latches the error (further feeds keep failing), and no input — truncated,
// oversized, duplicated, or pipelined — can make it buffer unboundedly or
// mis-frame a later message.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "http/http.h"

namespace rr::http {

struct ParserLimits {
  // Request line / status line + header block, CRLFs included.
  size_t max_header_bytes = 64 * 1024;
  // Declared Content-Length cap; larger messages are refused at the header,
  // before any body byte is buffered.
  uint64_t max_body_bytes = uint64_t{64} * 1024 * 1024;
};

class RequestParser {
 public:
  RequestParser() = default;
  explicit RequestParser(ParserLimits limits) : limits_(limits) {}

  // Consumes `data`, appending every request it completes to `out`. On a
  // protocol violation the returned error latches: the connection is
  // unframeable from here on, so the caller answers error_status_code()
  // and closes. Stray CRLFs between pipelined messages are tolerated.
  Status Feed(ByteSpan data, std::vector<Request>* out);

  // True between messages: a peer close here is a clean keep-alive
  // teardown, anywhere else it truncated a message.
  bool idle() const { return state_ == State::kHead && buffer_.empty(); }

  bool failed() const { return state_ == State::kError; }

  // The HTTP status to answer a failed parse with (0 while not failed).
  int error_status_code() const { return error_status_; }

 private:
  enum class State { kHead, kBody, kError };

  Status Fail(int http_status, Status status);
  // Extracts complete heads (and any buffered body prefix) from buffer_.
  Status DrainBuffer(std::vector<Request>* out);
  Status ParseHead(std::string_view head);

  ParserLimits limits_{};
  State state_ = State::kHead;
  std::string buffer_;  // current message's head (starts at its first byte)
  Request current_;
  uint64_t body_remaining_ = 0;
  int error_status_ = 0;
  Status error_;
};

// The client-side mirror, used by the load generator and tests: feed
// response bytes, get completed responses. Responses are framed by
// Content-Length only (absent = empty body), which is what the epoll
// server emits.
class ResponseParser {
 public:
  ResponseParser() = default;
  explicit ResponseParser(ParserLimits limits) : limits_(limits) {}

  Status Feed(ByteSpan data, std::vector<Response>* out);

  bool idle() const { return state_ == State::kHead && buffer_.empty(); }
  bool failed() const { return state_ == State::kError; }

 private:
  enum class State { kHead, kBody, kError };

  Status Fail(Status status);
  Status DrainBuffer(std::vector<Response>* out);
  Status ParseHead(std::string_view head);

  ParserLimits limits_{};
  State state_ = State::kHead;
  std::string buffer_;
  Response current_;
  uint64_t body_remaining_ = 0;
  Status error_;
};

}  // namespace rr::http
