// Blocking HTTP/1.1 server, one thread per connection with keep-alive.
// Hosts the baseline functions' ingress (the platform side of Fig. 1a).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "http/http.h"

namespace rr::http {

using Handler = std::function<Response(const Request&)>;

class Server {
 public:
  // Binds 127.0.0.1:port (0 = ephemeral) and starts the accept loop.
  static Result<std::unique_ptr<Server>> Start(uint16_t port, Handler handler);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  uint16_t port() const { return listener_.port(); }

  // Stops accepting and joins all connection threads.
  void Shutdown();

  uint64_t requests_served() const { return requests_served_.load(); }

 private:
  Server(osal::TcpListener listener, Handler handler)
      : listener_(std::move(listener)), handler_(std::move(handler)) {}

  void AcceptLoop();
  void ServeConnection(osal::Connection conn);

  osal::TcpListener listener_;
  Handler handler_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread accept_thread_;
  Mutex workers_mutex_;
  std::vector<std::thread> workers_ RR_GUARDED_BY(workers_mutex_);
};

}  // namespace rr::http
