// The HTTP gateway: Roadrunner's front door.
//
// Serves `POST /v1/invoke/<pipeline>` over the epoll server, mapping each
// request body onto api::Runtime::Submit for the pipeline registered under
// that name, and streaming the run's result Buffer back as the response
// body by chunk sharing — the payload plane's zero-copy guarantee holds
// from guest egress to the response writev.
//
// Every request runs the middleware pipeline (interceptor.h): the global
// chain, then the matched route's chain, enter phases inward and return
// phases outward. Dispatch is fully asynchronous — the event loop hands the
// run a Responder via Invocation::NotifyDone and moves on; no gateway
// thread ever blocks on a run.
//
// Route map:
//   POST /v1/invoke/<pipeline>  -> Submit to the registered pipeline
//   GET  /healthz               -> HealthCheckInterceptor short-circuit
//   anything else               -> 404 (405 for non-POST on an invoke path)
//
// Status mapping (HttpStatusFor): vetoes and failed runs answer with the
// Status-mapped code — 429 for quota/admission sheds (with Retry-After),
// 503 when the runtime is shutting down, 404 for unknown pipelines, 5xx
// for run failures — always a JSON error body.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include <string>
#include <vector>

#include "api/runtime.h"
#include "gateway/interceptor.h"
#include "http/epoll_server.h"

namespace rr::gateway {

class Gateway {
 public:
  struct RouteOptions {
    // Entered after the global chain, returned before it.
    std::vector<std::shared_ptr<Interceptor>> interceptors;
  };

  struct Options {
    // Transport knobs (port, bind address, connection/pipeline caps,
    // parser limits). bind_address defaults to loopback; deployments front
    // the open internet with kAny.
    http::EpollServer::Options server;
    // The global interceptor chain, entered in this order for every
    // request. Order is the contract: e.g. health before auth means probes
    // skip credentials; auth before rate-limit means quotas see tenants.
    std::vector<std::shared_ptr<Interceptor>> interceptors;
  };

  // `runtime` must outlive the gateway.
  static Result<std::unique_ptr<Gateway>> Start(api::Runtime* runtime,
                                                Options options);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  // Exposes `spec` as POST /v1/invoke/<name>. Thread-safe; routes may be
  // added while serving. Fails on duplicate names and on specs whose
  // functions are not registered with the runtime (checked at first use).
  Status AddRoute(const std::string& name, api::ChainSpec spec,
                  RouteOptions options = {});
  Status AddRoute(const std::string& name, api::DagSpec spec,
                  RouteOptions options = {});

  uint16_t port() const { return server_->port(); }
  size_t active_connections() const { return server_->active_connections(); }

  void Stop() { server_->Stop(); }

 private:
  struct Route;
  Gateway(api::Runtime* runtime, Options options);

  void Handle(http::Request&& request, http::EpollServer::Responder responder);
  Status AddRouteImpl(const std::string& name, RouteOptions options,
                      std::function<Result<std::shared_ptr<api::Invocation>>(
                          rr::Buffer)> submit);
  std::shared_ptr<const Route> Match(const RequestContext& ctx,
                                     std::string* route_name) const;

  api::Runtime* const runtime_;
  const Options options_;
  std::shared_ptr<const InterceptorChain> global_chain_;
  mutable Mutex routes_mutex_;
  std::map<std::string, std::shared_ptr<const Route>> routes_
      RR_GUARDED_BY(routes_mutex_);
  std::unique_ptr<http::EpollServer> server_;
};

}  // namespace rr::gateway
