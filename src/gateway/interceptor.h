// The gateway's middleware pipeline: composable interceptors with paired
// enter/return phases around workflow dispatch.
//
// A request flows
//
//   global enter -> route enter -> dispatch -> route return -> global return
//
// where the chain a route executes is the global interceptor list followed
// by the route's own, entered front-to-back and returned back-to-front —
// an interceptor always sees the return phase of everything it admitted.
//
// Short-circuiting:
//   * OnEnter returning a non-OK Status vetoes the request. Interceptors
//     entered before the vetoing one still get their OnReturn; the vetoing
//     one does not (it never admitted the request). The response is mapped
//     from the Status — HttpStatusFor — unless the interceptor staged a
//     specific status/headers in the context first (401 challenges, 429
//     Retry-After).
//   * OnEnter may answer directly (health checks): fill ctx.response, set
//     ctx.short_circuited, return OK. Dispatch is skipped and the return
//     phase unwinds through the answering interceptor.
//
// OnEnter always runs on the gateway's event loop — it must not block (a
// TryConsume, a map lookup, a header edit; never a Consume or an I/O wait).
// OnReturn runs wherever the response was produced: the event loop for
// short circuits, a runtime driver thread for dispatched requests. An
// interceptor shared across requests synchronizes its own state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/token_bucket.h"
#include "http/epoll_server.h"

namespace rr::gateway {

struct RequestContext {
  http::Request request;
  // The pipeline name the router matched ("" until routed / non-invoke).
  std::string route;
  std::string tenant = "anonymous";
  uint64_t trace_id = 0;
  TimePoint received{};

  // The response under construction. Dispatch fills it from the run result;
  // a short-circuiting interceptor fills it instead. Return-phase
  // interceptors may decorate it (headers) on the way out.
  http::StreamResponse response;
  bool short_circuited = false;

  // When a veto Status has no natural HTTP mapping (401 vs 403, 413 vs
  // 429), the vetoing interceptor stages the exact code here.
  int error_http_status = 0;
};

class Interceptor {
 public:
  virtual ~Interceptor() = default;
  virtual std::string_view name() const = 0;
  virtual Status OnEnter(RequestContext& ctx) = 0;
  virtual void OnReturn(RequestContext& ctx) {}
};

// An ordered interceptor list with unwind bookkeeping.
class InterceptorChain {
 public:
  InterceptorChain() = default;
  explicit InterceptorChain(
      std::vector<std::shared_ptr<Interceptor>> interceptors)
      : interceptors_(std::move(interceptors)) {}

  // Runs enter phases front-to-back. `entered` is set to the number of
  // interceptors that admitted the request (and therefore owe a return
  // phase) — on veto, everything before the vetoing interceptor.
  Status RunEnter(RequestContext& ctx, size_t* entered) const;

  // Unwinds return phases back-to-front across the first `entered`.
  void RunReturn(RequestContext& ctx, size_t entered) const;

  size_t size() const { return interceptors_.size(); }

 private:
  std::vector<std::shared_ptr<Interceptor>> interceptors_;
};

// Maps a veto/dispatch Status onto the HTTP status line.
int HttpStatusFor(StatusCode code);
const char* HttpReasonFor(int status);

// Builds the error response for a vetoed or failed request: JSON body with
// the status message, honoring any staged error_http_status/headers.
http::StreamResponse ErrorResponse(const RequestContext& ctx,
                                   const Status& status);

// --- built-in interceptors ---------------------------------------------------

// Tags every request with a trace id (reusing an incoming X-Request-Id when
// it parses as one of ours) and echoes it back as X-Request-Id. When the
// runtime's tracing is on, the id stitches the gateway edge and the run's
// spans into one trace.
class RequestIdInterceptor : public Interceptor {
 public:
  std::string_view name() const override { return "request-id"; }
  Status OnEnter(RequestContext& ctx) override;
  void OnReturn(RequestContext& ctx) override;
};

// Bearer-token authentication stub: a static token -> tenant table. Not a
// credential system — the seam where one plugs in. Missing credentials are
// 401 (or admitted as "anonymous" when allowed); unknown tokens are 403.
class AuthInterceptor : public Interceptor {
 public:
  struct Options {
    std::map<std::string, std::string> token_to_tenant;
    bool allow_anonymous = true;
  };
  explicit AuthInterceptor(Options options) : options_(std::move(options)) {}

  std::string_view name() const override { return "auth"; }
  Status OnEnter(RequestContext& ctx) override;

 private:
  const Options options_;
};

// Rejects request bodies over the limit with 413 before they reach a
// pipeline. (The HTTP parser already bounds what gets buffered; this is the
// per-route/per-deployment policy knob on top.)
class BodyLimitInterceptor : public Interceptor {
 public:
  explicit BodyLimitInterceptor(size_t max_body_bytes)
      : max_body_bytes_(max_body_bytes) {}

  std::string_view name() const override { return "body-limit"; }
  Status OnEnter(RequestContext& ctx) override;

 private:
  const size_t max_body_bytes_;
};

// Per-tenant request-rate quota on a RequestBucket (requests/s + burst).
// Over-quota requests are shed with 429 and a Retry-After hint from the
// bucket's refill schedule.
class RateLimitInterceptor : public Interceptor {
 public:
  RateLimitInterceptor(double requests_per_sec, uint64_t burst)
      : rate_(requests_per_sec), burst_(burst) {}

  std::string_view name() const override { return "rate-limit"; }
  Status OnEnter(RequestContext& ctx) override;

 private:
  RequestBucket& BucketFor(const std::string& tenant);

  const double rate_;
  const uint64_t burst_;
  Mutex mutex_;
  // unique_ptr keeps handed-out bucket references address-stable; the
  // buckets themselves are internally synchronized.
  std::map<std::string, std::unique_ptr<RequestBucket>> buckets_
      RR_GUARDED_BY(mutex_);
};

// Answers GET /healthz inline with liveness JSON — before auth and quotas,
// so orchestrator probes never consume tenant budget or need credentials.
class HealthCheckInterceptor : public Interceptor {
 public:
  using Fields = std::function<std::vector<std::pair<std::string, int64_t>>()>;
  explicit HealthCheckInterceptor(Fields fields = nullptr)
      : fields_(std::move(fields)) {}

  std::string_view name() const override { return "health"; }
  Status OnEnter(RequestContext& ctx) override;

 private:
  const Fields fields_;
};

// Load shedding at the front door, fed by the runtime's own signals: the
// in-flight run count (rr_inflight_runs's source) and the instance-pool
// lease-wait histogram (rr_pool_lease_wait_seconds). When either says the
// backend is saturated, new work is shed with 429 + Retry-After instead of
// queueing into a latency collapse.
class AdmissionInterceptor : public Interceptor {
 public:
  struct Options {
    // Reject when this many runs are already in flight. 0 = no bound.
    size_t max_inflight_runs = 0;
    // Reject while the average pool lease wait over the sampling window
    // exceeds this many seconds. <= 0 disables the signal.
    double max_avg_lease_wait_seconds = 0;
    Nanos sample_window = std::chrono::milliseconds(100);
    // Source of the live in-flight count (e.g. api::Runtime::in_flight).
    std::function<size_t()> inflight;
  };
  explicit AdmissionInterceptor(Options options);

  std::string_view name() const override { return "admission"; }
  Status OnEnter(RequestContext& ctx) override;

 private:
  bool LeaseWaitSaturated();

  const Options options_;
  Mutex mutex_;
  TimePoint last_sample_ RR_GUARDED_BY(mutex_){};
  double last_sum_ RR_GUARDED_BY(mutex_) = 0;
  uint64_t last_count_ RR_GUARDED_BY(mutex_) = 0;
  bool saturated_ RR_GUARDED_BY(mutex_) = false;
};

}  // namespace rr::gateway
