#include "gateway/gateway.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rr::gateway {
namespace {

constexpr std::string_view kInvokePrefix = "/v1/invoke/";

obs::Counter& RequestsTotal(int status_code) {
  // One series per status code actually answered; the handful of codes the
  // gateway emits keeps the family small.
  static obs::Registry& registry = obs::Registry::Get();
  return *registry.counter("rr_gateway_requests_total",
                           "requests answered by the gateway",
                           {{"code", std::to_string(status_code)}});
}

obs::Counter& ShedTotal() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_gateway_shed_total",
      "requests shed by quota or admission control (429s)");
  return *counter;
}

obs::Histogram& RequestLatency() {
  static obs::Histogram* histogram = obs::Registry::Get().histogram(
      "rr_gateway_request_latency_seconds",
      "request receipt to response enqueue", {},
      obs::DefaultLatencyBucketsSeconds());
  return *histogram;
}

}  // namespace

struct Gateway::Route {
  InterceptorChain chain;  // global + route interceptors, composed once
  std::function<Result<std::shared_ptr<api::Invocation>>(rr::Buffer)> submit;
};

Gateway::Gateway(api::Runtime* runtime, Options options)
    : runtime_(runtime), options_(std::move(options)) {
  global_chain_ = std::make_shared<const InterceptorChain>(
      options_.interceptors);
}

Result<std::unique_ptr<Gateway>> Gateway::Start(api::Runtime* runtime,
                                                Options options) {
  auto server_options = options.server;
  std::unique_ptr<Gateway> gateway(
      new Gateway(runtime, std::move(options)));
  RR_ASSIGN_OR_RETURN(
      auto server,
      http::EpollServer::Start(
          server_options,
          [raw = gateway.get()](http::Request&& request,
                                http::EpollServer::Responder responder) {
            raw->Handle(std::move(request), std::move(responder));
          }));
  gateway->server_ = std::move(server);
  return gateway;
}

Gateway::~Gateway() {
  // Stop the event loop before members tear down: the handler dereferences
  // this object. In-flight runs still complete afterward — their callbacks
  // hold shared_ptrs to everything they touch and their Sends are no-ops
  // once the server is gone.
  if (server_ != nullptr) server_->Stop();
}

Status Gateway::AddRouteImpl(
    const std::string& name, RouteOptions options,
    std::function<Result<std::shared_ptr<api::Invocation>>(rr::Buffer)>
        submit) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return InvalidArgumentError("route name must be a single path segment: \"" +
                                name + "\"");
  }
  auto route = std::make_shared<Route>();
  std::vector<std::shared_ptr<Interceptor>> chain = options_.interceptors;
  chain.insert(chain.end(), options.interceptors.begin(),
               options.interceptors.end());
  route->chain = InterceptorChain(std::move(chain));
  route->submit = std::move(submit);
  MutexLock lock(routes_mutex_);
  const auto [it, inserted] = routes_.emplace(name, std::move(route));
  (void)it;
  if (!inserted) {
    return AlreadyExistsError("route \"" + name + "\" already registered");
  }
  return Status::Ok();
}

Status Gateway::AddRoute(const std::string& name, api::ChainSpec spec,
                         RouteOptions options) {
  return AddRouteImpl(name, std::move(options),
                      [runtime = runtime_, spec = std::move(spec)](
                          rr::Buffer input) {
                        return runtime->Submit(spec, std::move(input));
                      });
}

Status Gateway::AddRoute(const std::string& name, api::DagSpec spec,
                         RouteOptions options) {
  return AddRouteImpl(name, std::move(options),
                      [runtime = runtime_, spec = std::move(spec)](
                          rr::Buffer input) {
                        return runtime->Submit(spec, std::move(input));
                      });
}

std::shared_ptr<const Gateway::Route> Gateway::Match(
    const RequestContext& ctx, std::string* route_name) const {
  std::string_view target = ctx.request.target;
  const size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  if (target.size() <= kInvokePrefix.size() ||
      target.substr(0, kInvokePrefix.size()) != kInvokePrefix) {
    return nullptr;
  }
  *route_name = std::string(target.substr(kInvokePrefix.size()));
  MutexLock lock(routes_mutex_);
  const auto it = routes_.find(*route_name);
  return it != routes_.end() ? it->second : nullptr;
}

namespace {

// The single exit point: return-phase unwind, metrics, send. Runs on the
// event loop for short circuits and vetoes, on a driver thread for
// dispatched requests — the caller guarantees `chain` outlives the call
// (it lives in the gateway or in a route shared_ptr the caller captured).
void Finish(RequestContext& ctx, const InterceptorChain& chain, size_t entered,
            const http::EpollServer::Responder& responder) {
  chain.RunReturn(ctx, entered);
  RequestsTotal(ctx.response.status_code).Inc();
  if (ctx.response.status_code == 429) ShedTotal().Inc();
  RequestLatency().Observe(ToSeconds(Now() - ctx.received));
  responder.Send(std::move(ctx.response));
}

}  // namespace

void Gateway::Handle(http::Request&& request,
                     http::EpollServer::Responder responder) {
  auto ctx = std::make_shared<RequestContext>();
  ctx->request = std::move(request);
  ctx->received = Now();

  std::string route_name;
  std::shared_ptr<const Route> route = Match(*ctx, &route_name);
  std::shared_ptr<const InterceptorChain> global_chain = global_chain_;
  const InterceptorChain& chain =
      route != nullptr ? route->chain : *global_chain;
  if (route != nullptr) ctx->route = route_name;

  size_t entered = 0;
  const Status admitted = chain.RunEnter(*ctx, &entered);
  if (!admitted.ok()) {
    ctx->response = ErrorResponse(*ctx, admitted);
    Finish(*ctx, chain, entered, responder);
    return;
  }
  if (ctx->short_circuited) {
    Finish(*ctx, chain, entered, responder);
    return;
  }
  if (route == nullptr) {
    const bool invoke_path =
        ctx->request.target.compare(0, kInvokePrefix.size(), kInvokePrefix) ==
        0;
    const Status status =
        invoke_path ? NotFoundError("no pipeline named \"" + route_name + "\"")
                    : NotFoundError("no such endpoint: " + ctx->request.target);
    ctx->response = ErrorResponse(*ctx, status);
    Finish(*ctx, chain, entered, responder);
    return;
  }
  if (ctx->request.method != "POST") {
    ctx->error_http_status = 405;
    ctx->response.headers["Allow"] = "POST";
    ctx->response = ErrorResponse(
        *ctx, InvalidArgumentError("invoke requires POST"));
    Finish(*ctx, chain, entered, responder);
    return;
  }

  // Dispatch. The request body's storage is adopted into the payload plane
  // (no copy), and Submit runs under the request's trace id so the edge
  // and the run stitch into one trace.
  Result<std::shared_ptr<api::Invocation>> submitted = [&] {
    obs::ScopedTraceContext trace_scope(
        obs::SpanContext{ctx->trace_id, 0});
    return route->submit(rr::Buffer::Adopt(std::move(ctx->request.body)));
  }();
  if (!submitted.ok()) {
    ctx->response = ErrorResponse(*ctx, submitted.status());
    Finish(*ctx, chain, entered, responder);
    return;
  }

  // Asynchronous completion: no thread parks on the run. The callback fires
  // on the completing driver; the response body shares the result's chunks.
  // The captured route shared_ptr keeps the chain alive past gateway
  // teardown; a Send after Stop is a no-op.
  std::shared_ptr<api::Invocation> invocation = std::move(*submitted);
  api::Invocation* raw = invocation.get();
  raw->NotifyDone([ctx, route, entered, responder, runtime = runtime_,
                   invocation = std::move(invocation)]() mutable {
    // The run is done when this fires: Wait() returns without blocking.
    const Result<rr::Buffer>& result = invocation->Wait();
    if (result.ok()) {
      ctx->response = http::StreamResponse(200, "OK");
      ctx->response.headers["Content-Type"] = "application/octet-stream";
      ctx->response.body = *result;  // chunk sharing, not a copy
    } else {
      // A run shed by the failure-recovery plane maps to 503; when an open
      // circuit breaker caused it, hint the client at the breaker's next
      // half-open probe — retrying sooner can only be refused again.
      if (result.status().code() == StatusCode::kUnavailable) {
        const Nanos probe_in = runtime->manager()
                                   .hops()
                                   .OpenBreakerRetryAfter()
                                   .value_or(std::chrono::seconds(1));
        const int64_t seconds =
            std::max<int64_t>(1, (probe_in.count() + 999'999'999) /
                                     1'000'000'000);
        ctx->response.headers["Retry-After"] = std::to_string(seconds);
      }
      ctx->response = ErrorResponse(*ctx, result.status());
    }
    Finish(*ctx, route->chain, entered, responder);
  });
}

}  // namespace rr::gateway
