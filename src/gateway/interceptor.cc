#include "gateway/interceptor.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rr::gateway {
namespace {

std::string JsonError(int http_status, const std::string& message) {
  std::string body = "{\"error\":\"";
  // The messages are our own Status strings; escape the two characters that
  // could break the JSON string literal.
  for (char c : message) {
    if (c == '"' || c == '\\') body += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    body += c;
  }
  body += "\",\"status\":";
  body += std::to_string(http_status);
  body += "}";
  return body;
}

std::string FormatTraceId(uint64_t id) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, id);
  return buffer;
}

bool ParseTraceId(std::string_view hex, uint64_t* out) {
  if (hex.size() != 16) return false;
  uint64_t value = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  if (value == 0) return false;
  *out = value;
  return true;
}

}  // namespace

Status InterceptorChain::RunEnter(RequestContext& ctx, size_t* entered) const {
  *entered = 0;
  for (size_t i = 0; i < interceptors_.size(); ++i) {
    RR_RETURN_IF_ERROR(interceptors_[i]->OnEnter(ctx));
    *entered = i + 1;
    if (ctx.short_circuited) break;
  }
  return Status::Ok();
}

void InterceptorChain::RunReturn(RequestContext& ctx, size_t entered) const {
  for (size_t i = entered; i > 0; --i) {
    interceptors_[i - 1]->OnReturn(ctx);
  }
}

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kPermissionDenied: return 403;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kFailedPrecondition: return 412;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kUnimplemented: return 501;
    case StatusCode::kUnavailable: return 503;
    case StatusCode::kDeadlineExceeded: return 504;
    default: return 500;
  }
}

const char* HttpReasonFor(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Error";
  }
}

http::StreamResponse ErrorResponse(const RequestContext& ctx,
                                   const Status& status) {
  const int http_status = ctx.error_http_status != 0
                              ? ctx.error_http_status
                              : HttpStatusFor(status.code());
  http::StreamResponse response(http_status, HttpReasonFor(http_status));
  // A vetoing interceptor may have staged headers (WWW-Authenticate,
  // Retry-After) on the context's response; carry them over.
  response.headers = ctx.response.headers;
  response.headers["Content-Type"] = "application/json";
  response.body =
      Buffer::FromString(JsonError(http_status, status.message()));
  return response;
}

// --- RequestIdInterceptor ----------------------------------------------------

Status RequestIdInterceptor::OnEnter(RequestContext& ctx) {
  const auto it = ctx.request.headers.find("X-Request-Id");
  uint64_t id = 0;
  if (it == ctx.request.headers.end() || !ParseTraceId(it->second, &id)) {
    id = obs::NewTraceId();
  }
  ctx.trace_id = id;
  return Status::Ok();
}

void RequestIdInterceptor::OnReturn(RequestContext& ctx) {
  if (ctx.trace_id != 0) {
    ctx.response.headers["X-Request-Id"] = FormatTraceId(ctx.trace_id);
  }
}

// --- AuthInterceptor ---------------------------------------------------------

Status AuthInterceptor::OnEnter(RequestContext& ctx) {
  const auto it = ctx.request.headers.find("Authorization");
  if (it == ctx.request.headers.end()) {
    if (options_.allow_anonymous) {
      ctx.tenant = "anonymous";
      return Status::Ok();
    }
    ctx.error_http_status = 401;
    ctx.response.headers["WWW-Authenticate"] = "Bearer";
    return PermissionDeniedError("missing credentials");
  }
  constexpr std::string_view kScheme = "Bearer ";
  const std::string_view value = it->second;
  if (value.size() <= kScheme.size() ||
      !EqualsIgnoreCase(value.substr(0, kScheme.size()), kScheme)) {
    ctx.error_http_status = 401;
    ctx.response.headers["WWW-Authenticate"] = "Bearer";
    return PermissionDeniedError("unsupported authorization scheme");
  }
  const std::string token(TrimWhitespace(value.substr(kScheme.size())));
  const auto tenant = options_.token_to_tenant.find(token);
  if (tenant == options_.token_to_tenant.end()) {
    return PermissionDeniedError("unknown token");
  }
  ctx.tenant = tenant->second;
  return Status::Ok();
}

// --- BodyLimitInterceptor ----------------------------------------------------

Status BodyLimitInterceptor::OnEnter(RequestContext& ctx) {
  if (ctx.request.body.size() > max_body_bytes_) {
    ctx.error_http_status = 413;
    return ResourceExhaustedError(
        "request body exceeds the route limit of " +
        std::to_string(max_body_bytes_) + " bytes");
  }
  return Status::Ok();
}

// --- RateLimitInterceptor ----------------------------------------------------

RequestBucket& RateLimitInterceptor::BucketFor(const std::string& tenant) {
  MutexLock lock(mutex_);
  auto& bucket = buckets_[tenant];
  if (bucket == nullptr) {
    bucket = std::make_unique<RequestBucket>(rate_, burst_);
  }
  return *bucket;
}

Status RateLimitInterceptor::OnEnter(RequestContext& ctx) {
  RequestBucket& bucket = BucketFor(ctx.tenant);
  if (bucket.TryConsume(1)) return Status::Ok();
  const double wait_sec = ToSeconds(bucket.DelayUntilAvailable(1));
  ctx.error_http_status = 429;
  ctx.response.headers["Retry-After"] =
      std::to_string(static_cast<int64_t>(std::ceil(std::max(wait_sec, 1e-3))));
  return ResourceExhaustedError("rate limit exceeded for tenant \"" +
                                ctx.tenant + "\"");
}

// --- HealthCheckInterceptor --------------------------------------------------

Status HealthCheckInterceptor::OnEnter(RequestContext& ctx) {
  if (ctx.request.method != "GET" || ctx.request.target != "/healthz") {
    return Status::Ok();
  }
  std::string body = "{\"status\":\"ok\"";
  if (fields_) {
    for (const auto& [key, value] : fields_()) {
      body += ",\"" + key + "\":" + std::to_string(value);
    }
  }
  body += "}";
  ctx.response = http::StreamResponse(200, "OK");
  ctx.response.headers["Content-Type"] = "application/json";
  ctx.response.body = Buffer::FromString(body);
  ctx.short_circuited = true;
  return Status::Ok();
}

// --- AdmissionInterceptor ----------------------------------------------------

AdmissionInterceptor::AdmissionInterceptor(Options options)
    : options_(std::move(options)), last_sample_(Now()) {}

bool AdmissionInterceptor::LeaseWaitSaturated() {
  if (options_.max_avg_lease_wait_seconds <= 0) return false;
  MutexLock lock(mutex_);
  const TimePoint now = Now();
  if (now - last_sample_ >= options_.sample_window) {
    // Windowed delta over the pool's own histogram: the average lease wait
    // across acquisitions since the last sample. No new acquisitions keeps
    // the previous verdict (an idle pool is not saturated — but a pool so
    // jammed nothing completes keeps shedding).
    static obs::Histogram* lease_wait = obs::Registry::Get().histogram(
        "rr_pool_lease_wait_seconds",
        "time callers waited for a pooled instance",
        {}, obs::DefaultLatencyBucketsSeconds());
    const auto snapshot = lease_wait->Snap();
    if (snapshot.count > last_count_) {
      const double avg = (snapshot.sum - last_sum_) /
                         static_cast<double>(snapshot.count - last_count_);
      saturated_ = avg > options_.max_avg_lease_wait_seconds;
    }
    last_sum_ = snapshot.sum;
    last_count_ = snapshot.count;
    last_sample_ = now;
  }
  return saturated_;
}

Status AdmissionInterceptor::OnEnter(RequestContext& ctx) {
  if (options_.max_inflight_runs > 0 && options_.inflight &&
      options_.inflight() >= options_.max_inflight_runs) {
    ctx.error_http_status = 429;
    ctx.response.headers["Retry-After"] = "1";
    return ResourceExhaustedError("backend at capacity: " +
                                  std::to_string(options_.max_inflight_runs) +
                                  " runs in flight");
  }
  if (LeaseWaitSaturated()) {
    ctx.error_http_status = 429;
    ctx.response.headers["Retry-After"] = "1";
    return ResourceExhaustedError("backend saturated: pool lease waits over "
                                  "threshold");
  }
  return Status::Ok();
}

}  // namespace rr::gateway
