#include "core/kernel_channel.h"

#include "core/region_guard.h"
#include "obs/metrics.h"

namespace rr::core {
namespace {

// Channel traffic by mode: one family, one series per transfer mechanism
// (`mode="kernel"` here, "user"/"network" in their channels).
obs::Counter& KernelBytesSent() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_channel_bytes_total", "Payload bytes moved through data channels",
      {{"mode", "kernel"}, {"direction", "sent"}});
  return *counter;
}

obs::Counter& KernelBytesReceived() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_channel_bytes_total", "Payload bytes moved through data channels",
      {{"mode", "kernel"}, {"direction", "received"}});
  return *counter;
}

}  // namespace

Result<KernelChannelSender> KernelChannelSender::Connect(
    const std::string& socket_path) {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, osal::UnixConnect(socket_path));
  return KernelChannelSender(std::move(conn));
}

Status KernelChannelSender::Send(Shim& source, const MemoryRegion& region,
                                 CopyMode mode) {
  timing_ = {};
  if (mode == CopyMode::kDirectGuest) {
    // Bounds-checked view of the source function's memory; the kernel copies
    // from these pages into its socket buffer — the only copy on this side.
    RR_ASSIGN_OR_RETURN(const ByteSpan view, source.OutputView(region));
    const Stopwatch transfer_timer;
    RR_RETURN_IF_ERROR(serde::WriteFrame(conn_, view));
    timing_.transfer = transfer_timer.Elapsed();
  } else {
    // Paper path: the shim reads the data out of the Wasm VM first
    // (read_memory_host), paying the Wasm VM I/O copy.
    Bytes staged(region.length);
    const Stopwatch io_timer;
    RR_RETURN_IF_ERROR(source.sandbox().ReadMemoryHost(region.address, staged));
    timing_.wasm_io = io_timer.Elapsed();
    const Stopwatch transfer_timer;
    RR_RETURN_IF_ERROR(serde::WriteFrame(conn_, staged));
    timing_.transfer = transfer_timer.Elapsed();
  }
  bytes_sent_ += region.length;
  KernelBytesSent().Inc(region.length);
  return Status::Ok();
}

Status KernelChannelSender::SendBytes(ByteSpan data) {
  RR_RETURN_IF_ERROR(serde::WriteFrame(conn_, data));
  bytes_sent_ += data.size();
  KernelBytesSent().Inc(data.size());
  return Status::Ok();
}

Status KernelChannelSender::SendBytes(const rr::BufferView& payload) {
  timing_ = {};
  const Stopwatch transfer_timer;
  RR_RETURN_IF_ERROR(serde::WriteFrame(conn_, payload));
  timing_.transfer = transfer_timer.Elapsed();
  bytes_sent_ += payload.size();
  KernelBytesSent().Inc(payload.size());
  return Status::Ok();
}

Result<MemoryRegion> KernelChannelReceiver::ReceiveInto(Shim& target,
                                                        CopyMode mode,
                                                        const RegionPlacer* place) {
  timing_ = {};
  const auto place_region = [&](uint64_t length) -> Result<MemoryRegion> {
    if (length > UINT32_MAX) {
      return InvalidArgumentError("frame exceeds 32-bit guest memory");
    }
    if (place != nullptr) return (*place)(static_cast<uint32_t>(length));
    return target.PrepareInput(static_cast<uint32_t>(length));
  };
  MemoryRegion delivered;
  // Reclaims a freshly placed region on any failure between placement and
  // hand-off (a frame read dying mid-body, a rejected guest write) — the
  // target instance outlives the failed transfer, so the region must not
  // stay allocated. Placer-provided regions (fan-in slices) belong to the
  // caller and are never released here.
  RegionGuard guard;
  if (mode == CopyMode::kDirectGuest) {
    const Stopwatch transfer_timer;
    Nanos alloc_time{0};
    RR_RETURN_IF_ERROR(serde::ReadFrameInto(
        conn_, [&](uint64_t length) -> Result<MutableByteSpan> {
          const Stopwatch alloc_timer;
          RR_ASSIGN_OR_RETURN(delivered, place_region(length));
          if (place == nullptr) guard = RegionGuard(&target, delivered);
          auto span = target.InputSpan(delivered);
          alloc_time = alloc_timer.Elapsed();
          return span;
        }));
    timing_.wasm_io = alloc_time;
    timing_.transfer = transfer_timer.Elapsed() - alloc_time;
  } else {
    // Paper path: kernel buffer -> shim buffer (transfer), then
    // allocate_memory + write_memory_host into the VM (Wasm VM I/O).
    const Stopwatch transfer_timer;
    RR_ASSIGN_OR_RETURN(const Bytes staged, serde::ReadFrame(conn_));
    timing_.transfer = transfer_timer.Elapsed();
    const Stopwatch io_timer;
    RR_ASSIGN_OR_RETURN(delivered, place_region(staged.size()));
    if (place == nullptr) guard = RegionGuard(&target, delivered);
    RR_RETURN_IF_ERROR(target.data().write_memory_host(staged, delivered.address));
    timing_.wasm_io = io_timer.Elapsed();
  }
  bytes_received_ += delivered.length;
  KernelBytesReceived().Inc(delivered.length);
  guard.Dismiss();
  return delivered;
}

Result<InvokeOutcome> KernelChannelReceiver::ReceiveAndInvoke(Shim& target,
                                                              CopyMode mode) {
  RR_ASSIGN_OR_RETURN(const MemoryRegion region, ReceiveInto(target, mode));
  RegionGuard guard(&target, region);
  auto outcome = target.InvokeOnRegion(region);
  // A successful invoke consumes the input; a failed one leaves it placed —
  // the guard reclaims it so the instance's heap stays bounded.
  if (outcome.ok()) guard.Dismiss();
  return outcome;
}

Result<KernelChannelListener> KernelChannelListener::Bind(
    const std::string& socket_path) {
  RR_ASSIGN_OR_RETURN(osal::UnixListener listener,
                      osal::UnixListener::Bind(socket_path));
  return KernelChannelListener(std::move(listener));
}

Result<KernelChannelReceiver> KernelChannelListener::Accept() {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, listener_.Accept());
  return KernelChannelReceiver::FromConnection(std::move(conn));
}

Result<std::pair<KernelChannelSender, KernelChannelReceiver>>
MakeKernelChannelPair() {
  RR_ASSIGN_OR_RETURN(auto pair, osal::ConnectedPair());
  return std::make_pair(KernelChannelSender::FromConnection(std::move(pair.first)),
                        KernelChannelReceiver::FromConnection(std::move(pair.second)));
}

}  // namespace rr::core
