// Roadrunner's data access model (§3.1, Table 1).
//
// DataAccess is the layer between a function's Wasm VM and its shim. It
// implements every API of Table 1 and enforces the security rules of §3.1:
// "Roadrunner restricts shim-to-Wasm access to pre-registered memory regions
// and applies bounds checking before any read or write operation."
//
//   Function-side (guest)                 Shim-side (host)
//   ---------------------                 ----------------
//   allocate_memory(len)                  read_memory_host(addr, len)
//   deallocate_memory(addr)               write_memory_host(data, addr)
//   read_memory_wasm(addr, len)
//   locate_memory_region(data)
//   send_to_host(addr, len)
#pragma once

#include <map>
#include <optional>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/status.h"
#include "runtime/wasm_sandbox.h"

namespace rr::core {

// A contiguous region of a function's linear memory.
struct MemoryRegion {
  uint32_t address = 0;
  uint32_t length = 0;

  bool operator==(const MemoryRegion&) const = default;
};

class DataAccess {
 public:
  explicit DataAccess(runtime::WasmSandbox* sandbox) : sandbox_(sandbox) {}

  DataAccess(const DataAccess&) = delete;
  DataAccess& operator=(const DataAccess&) = delete;

  // --- Table 1: function-side (Memory/Data Management, location=Function) --

  // Allocates linear memory in the Wasm VM and registers the region for shim
  // access.
  Result<uint32_t> allocate_memory(uint32_t len);

  // Deallocates and revokes shim access.
  Status deallocate_memory(uint32_t address);

  // Reads data from a specified address/length in the Wasm VM (a guest-side
  // copy of its own memory; used by functions to consume delivered input).
  Result<Bytes> read_memory_wasm(uint32_t address, uint32_t len);

  // Returns the memory pointer and length of `data`, which must alias the
  // function's linear memory (e.g. a handler-output view). Registers the
  // region so the shim may read it.
  Result<MemoryRegion> locate_memory_region(ByteSpan data);

  // Marks a registered region as the function's staged output ("transfers
  // data memory information to the host interface").
  Status send_to_host(uint32_t address, uint32_t len);

  // The shim's view of the staged output, if any. Consuming clears it.
  std::optional<MemoryRegion> TakeStagedOutput();

  // --- Table 1: shim-side (location=Shim) ----------------------------------

  // Reads from the Wasm VM memory. The region must be pre-registered and in
  // bounds; returns a zero-copy view valid until the next guest re-entry.
  Result<ByteSpan> read_memory_host(uint32_t address, uint32_t len);

  // Writes data into the Wasm VM at a pre-registered destination. The
  // BufferView overload gather-writes a segmented payload (the zero-copy
  // plane's chunks) without assembling a contiguous host copy first.
  Status write_memory_host(ByteSpan data, uint32_t address);
  Status write_memory_host(const rr::BufferView& data, uint32_t address);

  // --- region registry ------------------------------------------------------
  // Registers an externally-created region (e.g. handler output located via
  // InvokeResult). Rejects regions outside the current memory bounds.
  Status RegisterRegion(MemoryRegion region);
  bool IsRegistered(uint32_t address, uint32_t len) const;
  size_t registered_region_count() const { return regions_.size(); }

  runtime::WasmSandbox& sandbox() { return *sandbox_; }

 private:
  // Finds the registered region fully containing [address, address+len).
  const MemoryRegion* FindCovering(uint32_t address, uint32_t len) const;

  runtime::WasmSandbox* sandbox_;
  // Keyed by start address; regions never overlap (allocator-backed).
  std::map<uint32_t, MemoryRegion> regions_;
  std::optional<MemoryRegion> staged_output_;
};

}  // namespace rr::core
