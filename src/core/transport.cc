#include "core/transport.h"

#include <mutex>
#include <optional>
#include <thread>

#include "core/kernel_channel.h"
#include "core/network_channel.h"
#include "core/node_agent.h"
#include "core/user_channel.h"

namespace rr::core {

namespace {

// Locks both endpoint shims for the duration of a transfer. scoped_lock's
// deadlock-avoidance handles opposing pairs (a->b vs b->a); the degenerate
// self-hop (same shim both sides) locks once.
class PairLock {
 public:
  PairLock(Shim& source, Shim& target) {
    if (&source == &target) {
      single_.emplace(source.exec_mutex());
    } else {
      both_.emplace(source.exec_mutex(), target.exec_mutex());
    }
  }

 private:
  std::optional<std::lock_guard<std::mutex>> single_;
  std::optional<std::scoped_lock<std::mutex, std::mutex>> both_;
};

// The two shims are distinct sandboxes; run the send concurrently so a
// payload larger than the kernel socket buffer cannot self-deadlock.
template <typename Sender, typename Receiver>
Result<MemoryRegion> SendAndReceive(Sender& sender, Receiver& receiver,
                                    Endpoint& source, const MemoryRegion& region,
                                    Endpoint& target, TransferTiming* timing) {
  Status send_status;
  std::thread send_thread(
      [&] { send_status = sender.Send(*source.shim, region); });
  auto delivered = receiver.ReceiveInto(*target.shim);
  send_thread.join();
  RR_RETURN_IF_ERROR(send_status);
  if (delivered.ok() && timing != nullptr) {
    *timing += sender.last_timing();
    *timing += receiver.last_timing();
  }
  return delivered;
}

// --- user space -------------------------------------------------------------
// Channel construction is two pointer assignments; the hop holds no wire
// state, only the pair's serialization point.
class UserSpaceHop : public Hop {
 public:
  TransferMode mode() const override { return TransferMode::kUserSpace; }

  Result<MemoryRegion> Forward(Endpoint& source, const MemoryRegion& region,
                               Endpoint& target,
                               TransferTiming* timing) override {
    PairLock lock(*source.shim, *target.shim);
    RR_ASSIGN_OR_RETURN(UserSpaceChannel channel,
                        UserSpaceChannel::Create(source.shim, target.shim));
    (void)timing;  // one in-process copy; no kernel/socket phase to split out
    return channel.Transfer(region);
  }
};

class UserSpaceTransport : public Transport {
 public:
  TransferMode mode() const override { return TransferMode::kUserSpace; }

  Result<std::unique_ptr<Hop>> Connect(Endpoint& source,
                                       const Endpoint& target) override {
    // Validate the trust precondition once, at establishment.
    RR_RETURN_IF_ERROR(
        UserSpaceChannel::Create(source.shim, target.shim).status());
    return std::unique_ptr<Hop>(new UserSpaceHop());
  }
};

// --- kernel space -----------------------------------------------------------
class KernelHop : public Hop {
 public:
  KernelHop(KernelChannelSender sender, KernelChannelReceiver receiver)
      : sender_(std::move(sender)), receiver_(std::move(receiver)) {}

  TransferMode mode() const override { return TransferMode::kKernelSpace; }

  Result<MemoryRegion> Forward(Endpoint& source, const MemoryRegion& region,
                               Endpoint& target,
                               TransferTiming* timing) override {
    std::lock_guard<std::mutex> hop_lock(mutex_);
    PairLock shims(*source.shim, *target.shim);
    return SendAndReceive(sender_, receiver_, source, region, target, timing);
  }

 private:
  std::mutex mutex_;  // serializes concurrent transfers over this pair's wire
  KernelChannelSender sender_;
  KernelChannelReceiver receiver_;
};

class KernelTransport : public Transport {
 public:
  TransferMode mode() const override { return TransferMode::kKernelSpace; }

  Result<std::unique_ptr<Hop>> Connect(Endpoint& /*source*/,
                                       const Endpoint& /*target*/) override {
    RR_ASSIGN_OR_RETURN(auto pair, MakeKernelChannelPair());
    return std::unique_ptr<Hop>(
        new KernelHop(std::move(pair.first), std::move(pair.second)));
  }
};

// --- network ----------------------------------------------------------------
// Two shapes, chosen by the target's ingress at Connect time: a loopback hop
// (target port 0) holds both channel halves in-process and behaves like a
// kernel hop over TCP; an agent hop (port != 0) holds just the sender — the
// remote NodeAgent owns receive + invoke (§4.3, Algorithm 1).
class NetworkLoopbackHop : public Hop {
 public:
  NetworkLoopbackHop(NetworkChannelSender sender, NetworkChannelReceiver receiver)
      : sender_(std::move(sender)), receiver_(std::move(receiver)) {}

  TransferMode mode() const override { return TransferMode::kNetwork; }

  Result<MemoryRegion> Forward(Endpoint& source, const MemoryRegion& region,
                               Endpoint& target,
                               TransferTiming* timing) override {
    std::lock_guard<std::mutex> hop_lock(mutex_);
    PairLock shims(*source.shim, *target.shim);
    return SendAndReceive(sender_, receiver_, source, region, target, timing);
  }

 private:
  std::mutex mutex_;
  NetworkChannelSender sender_;
  NetworkChannelReceiver receiver_;
};

class NetworkAgentHop : public Hop {
 public:
  explicit NetworkAgentHop(NetworkChannelSender sender)
      : sender_(std::move(sender)) {}

  TransferMode mode() const override { return TransferMode::kNetwork; }
  bool invoke_coupled() const override { return true; }

  Result<MemoryRegion> Forward(Endpoint& /*source*/,
                               const MemoryRegion& /*region*/,
                               Endpoint& /*target*/,
                               TransferTiming* /*timing*/) override {
    return FailedPreconditionError(
        "delivery through a NodeAgent ingress is invoke-coupled; Dispatch the "
        "frame and consume the agent's delivery callback");
  }

  Status Dispatch(Endpoint& source, const MemoryRegion& region, uint64_t token,
                  TransferTiming* timing) override {
    std::lock_guard<std::mutex> hop_lock(mutex_);
    std::lock_guard<std::mutex> shim_lock(source.shim->exec_mutex());
    RR_RETURN_IF_ERROR(
        sender_.Send(*source.shim, region, CopyMode::kShimStaging, token));
    if (timing != nullptr) *timing += sender_.last_timing();
    return Status::Ok();
  }

  Status DispatchBytes(ByteSpan payload, uint64_t token) override {
    std::lock_guard<std::mutex> hop_lock(mutex_);
    return sender_.SendBytes(payload, token);
  }

  // Deliberately lock-free: eviction closes hops that may have a Dispatch
  // blocked on mutex_ (that is the point — a delivery timed out), so Close
  // must not queue behind them. shutdown(2) is safe against concurrent I/O
  // on the descriptor; the blocked send fails with EPIPE and the agent-side
  // worker dies with the connection, dropping any frame still in flight.
  void Close() override { sender_.ShutdownWire(); }

 private:
  std::mutex mutex_;
  NetworkChannelSender sender_;
};

class NetworkTransport : public Transport {
 public:
  TransferMode mode() const override { return TransferMode::kNetwork; }

  Result<std::unique_ptr<Hop>> Connect(Endpoint& /*source*/,
                                       const Endpoint& target) override {
    if (target.port == 0) {
      // No external ingress registered: create a loopback listener on demand
      // (the in-process stand-in for the remote node's shim port).
      RR_ASSIGN_OR_RETURN(NetworkChannelListener listener,
                          NetworkChannelListener::Bind(0));
      RR_ASSIGN_OR_RETURN(
          NetworkChannelSender sender,
          NetworkChannelSender::Connect(target.host, listener.port()));
      RR_ASSIGN_OR_RETURN(NetworkChannelReceiver receiver, listener.Accept());
      return std::unique_ptr<Hop>(
          new NetworkLoopbackHop(std::move(sender), std::move(receiver)));
    }
    // Route through the target node's agent: the preamble names the
    // function, the agent hands the connection to its shim's receiver.
    RR_ASSIGN_OR_RETURN(
        NetworkChannelSender sender,
        ConnectToRemoteFunction(target.host, target.port, target.shim->name()));
    return std::unique_ptr<Hop>(new NetworkAgentHop(std::move(sender)));
  }
};

}  // namespace

Result<InvokeOutcome> Hop::ForwardAndInvoke(Endpoint& source,
                                            const MemoryRegion& region,
                                            Endpoint& target,
                                            TransferTiming* timing) {
  RR_ASSIGN_OR_RETURN(const MemoryRegion delivered,
                      Forward(source, region, target, timing));
  std::lock_guard<std::mutex> shim_lock(target.shim->exec_mutex());
  return target.shim->InvokeOnRegion(delivered);
}

Status Hop::Dispatch(Endpoint& /*source*/, const MemoryRegion& /*region*/,
                     uint64_t /*token*/, TransferTiming* /*timing*/) {
  return FailedPreconditionError(
      "hop is not invoke-coupled; use Forward/ForwardAndInvoke");
}

Status Hop::DispatchBytes(ByteSpan /*payload*/, uint64_t /*token*/) {
  return FailedPreconditionError(
      "hop is not invoke-coupled; use Forward/ForwardAndInvoke");
}

std::unique_ptr<Transport> MakeUserSpaceTransport() {
  return std::make_unique<UserSpaceTransport>();
}
std::unique_ptr<Transport> MakeKernelTransport() {
  return std::make_unique<KernelTransport>();
}
std::unique_ptr<Transport> MakeNetworkTransport() {
  return std::make_unique<NetworkTransport>();
}

}  // namespace rr::core
