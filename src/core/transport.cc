#include "core/transport.h"

#include "common/mutex.h"
#include <optional>
#include <thread>

#include <map>

#include "core/kernel_channel.h"
#include "core/mux_client.h"
#include "core/network_channel.h"
#include "core/node_agent.h"
#include "core/region_guard.h"
#include "core/user_channel.h"
#include "osal/reactor.h"

namespace rr::core {

namespace {

// Locks both instances' memory planes for the duration of a guest-direct
// transfer: the source instance may already be mid-invocation for another
// run (its pool re-leased it after the producing invocation returned), and
// the target is the caller's leased instance, whose memory a payload
// consumer of an OLDER region may touch concurrently. MutexPairLock's
// deadlock-avoidance handles opposing pairs (a->b vs b->a) and the
// degenerate self-hop (same instance both sides) locks once.
class PairLock {
 public:
  PairLock(Shim& source, Shim& target)
      : both_(source.exec_mutex(), target.exec_mutex()) {}

 private:
  MutexPairLock both_;
};

// Pins a fan-in gather slice as the receive destination: the frame length
// must match the slice the executor carved out of the merged region.
RegionPlacer SlicePlacer(const MemoryRegion into) {
  return [into](uint32_t length) -> Result<MemoryRegion> {
    if (length != into.length) {
      return InternalError("fan-in slice length mismatch: frame carries " +
                           std::to_string(length) + " bytes for a " +
                           std::to_string(into.length) + "-byte slice");
    }
    return into;
  };
}

// Wire transfer of a host-resident payload: the sender streams the shared
// chunks (no source shim involvement — egress already happened at
// materialization) while the receiver delivers into the target's memory.
// Send and receive run concurrently so a payload larger than the kernel
// socket buffer cannot self-deadlock.
template <typename SendFn, typename Receiver>
Result<MemoryRegion> WireTransfer(SendFn&& send, Receiver&& receive,
                                  TransferTiming* timing,
                                  const TransferTiming& egress) {
  Status send_status;
  std::thread send_thread([&] { send_status = send(); });
  auto delivered = receive();
  send_thread.join();
  RR_RETURN_IF_ERROR(send_status);
  if (delivered.ok() && timing != nullptr) *timing += egress;
  return delivered;
}

// --- user space -------------------------------------------------------------
// Channel construction is two pointer assignments; the hop holds no wire
// state at all. Exclusivity of both linear memories comes from the pool
// layer: the caller leased `target`, and a guest-resident payload's source
// instance is pinned by the payload.
class UserSpaceHop : public Hop {
 public:
  Result<MemoryRegion> Forward(const Payload& payload, Shim& target,
                               TransferTiming* timing,
                               const MemoryRegion* into) override {
    (void)timing;  // one in-process copy; no kernel/socket phase to split out
    if (payload.guest_resident()) {
      // Classic §4.1 path: the single user-space copy between the two
      // linear memories, straight from the producer's registered region.
      Shim& source = *payload.guest_shim();
      PairLock lock(source, target);
      RR_ASSIGN_OR_RETURN(UserSpaceChannel channel,
                          UserSpaceChannel::Create(&source, &target));
      return channel.Transfer(*payload.guest_region(), into);
    }
    // Host-resident payload (a fan-out's shared chunk): the hand-off was a
    // refcount bump; the only byte movement left is the unavoidable
    // guest-boundary write into the target, gathered over the chunks.
    RR_ASSIGN_OR_RETURN(const rr::Buffer buffer, payload.Materialize());
    MutexLock lock(target.exec_mutex());
    MemoryRegion dest;
    RegionGuard guard;
    if (into != nullptr) {
      dest = *into;  // caller-owned fan-in slice: never released here
    } else {
      RR_ASSIGN_OR_RETURN(
          dest, target.PrepareInput(static_cast<uint32_t>(buffer.size())));
      guard = RegionGuard(&target, dest);
    }
    RR_RETURN_IF_ERROR(target.WriteInput(dest, buffer));
    guard.Dismiss();
    return dest;
  }

  TransferMode mode() const override { return TransferMode::kUserSpace; }
};

class UserSpaceTransport : public Transport {
 public:
  TransferMode mode() const override { return TransferMode::kUserSpace; }

  Result<std::unique_ptr<Hop>> Connect(Endpoint& source,
                                       const Endpoint& target,
                                       const TransportOptions& /*options*/) override {
    // Validate the trust precondition once, at establishment. (No wire, no
    // deadline: the transfer is two in-process memory operations.)
    RR_RETURN_IF_ERROR(
        UserSpaceChannel::Create(source.shim, target.shim).status());
    return std::unique_ptr<Hop>(new UserSpaceHop());
  }
};

// --- kernel space -----------------------------------------------------------
class KernelHop : public Hop {
 public:
  KernelHop(KernelChannelSender sender, KernelChannelReceiver receiver)
      : sender_(std::move(sender)), receiver_(std::move(receiver)) {}

  TransferMode mode() const override { return TransferMode::kKernelSpace; }

  Result<MemoryRegion> Forward(const Payload& payload, Shim& target,
                               TransferTiming* timing,
                               const MemoryRegion* into) override {
    // Egress (or the free refcounted read) happens before the wire lock: the
    // source instance serves other runs while this pair's wire is busy.
    TransferTiming egress{};
    RR_ASSIGN_OR_RETURN(const rr::Buffer buffer,
                        payload.Materialize(&egress.wasm_io));
    MutexLock hop_lock(mutex_);
    MutexLock target_lock(target.exec_mutex());
    const RegionPlacer placer = into != nullptr ? SlicePlacer(*into) : nullptr;
    const rr::BufferView view(buffer);
    auto delivered = WireTransfer(
        [&] { return sender_.SendBytes(view); },
        [&] {
          return receiver_.ReceiveInto(target, CopyMode::kShimStaging,
                                       into != nullptr ? &placer : nullptr);
        },
        timing, egress);
    if (delivered.ok() && timing != nullptr) {
      *timing += sender_.last_timing();
      *timing += receiver_.last_timing();
    }
    return delivered;
  }

 private:
  Mutex mutex_;  // serializes concurrent transfers over this pair's wire
  KernelChannelSender sender_;
  KernelChannelReceiver receiver_;
};

class KernelTransport : public Transport {
 public:
  TransferMode mode() const override { return TransferMode::kKernelSpace; }

  Result<std::unique_ptr<Hop>> Connect(Endpoint& /*source*/,
                                       const Endpoint& /*target*/,
                                       const TransportOptions& options) override {
    RR_ASSIGN_OR_RETURN(auto pair, MakeKernelChannelPair());
    RR_RETURN_IF_ERROR(pair.first.SetWireDeadline(options.transfer_deadline));
    RR_RETURN_IF_ERROR(pair.second.SetWireDeadline(options.transfer_deadline));
    return std::unique_ptr<Hop>(
        new KernelHop(std::move(pair.first), std::move(pair.second)));
  }
};

// --- network ----------------------------------------------------------------
// Two shapes, chosen by the target's ingress at Connect time: a loopback hop
// (target port 0) holds both channel halves in-process and behaves like a
// kernel hop over TCP; an agent hop (port != 0) holds just the sender — the
// remote NodeAgent owns receive + invoke (§4.3, Algorithm 1).
class NetworkLoopbackHop : public Hop {
 public:
  NetworkLoopbackHop(NetworkChannelSender sender, NetworkChannelReceiver receiver)
      : sender_(std::move(sender)), receiver_(std::move(receiver)) {}

  TransferMode mode() const override { return TransferMode::kNetwork; }
  bool healthy() const override { return sender_.wire_ok(); }

  Result<MemoryRegion> Forward(const Payload& payload, Shim& target,
                               TransferTiming* timing,
                               const MemoryRegion* into) override {
    TransferTiming egress{};
    RR_ASSIGN_OR_RETURN(const rr::Buffer buffer,
                        payload.Materialize(&egress.wasm_io));
    MutexLock hop_lock(mutex_);
    MutexLock target_lock(target.exec_mutex());
    const RegionPlacer placer = into != nullptr ? SlicePlacer(*into) : nullptr;
    const rr::BufferView view(buffer);
    auto delivered = WireTransfer(
        [&] { return sender_.SendBuffer(view); },
        [&] {
          return receiver_.ReceiveInto(target, CopyMode::kShimStaging,
                                       /*token=*/nullptr,
                                       into != nullptr ? &placer : nullptr);
        },
        timing, egress);
    if (delivered.ok() && timing != nullptr) {
      *timing += sender_.last_timing();
      *timing += receiver_.last_timing();
    }
    return delivered;
  }

 private:
  Mutex mutex_;
  NetworkChannelSender sender_;
  NetworkChannelReceiver receiver_;
};

class NetworkAgentHop : public Hop {
 public:
  explicit NetworkAgentHop(NetworkChannelSender sender)
      : sender_(std::move(sender)) {}

  TransferMode mode() const override { return TransferMode::kNetwork; }
  bool invoke_coupled() const override { return true; }
  bool healthy() const override { return sender_.wire_ok(); }

  Result<MemoryRegion> Forward(const Payload& /*payload*/, Shim& /*target*/,
                               TransferTiming* /*timing*/,
                               const MemoryRegion* /*into*/) override {
    return FailedPreconditionError(
        "delivery through a NodeAgent ingress is invoke-coupled; Dispatch the "
        "frame and consume the agent's delivery callback");
  }

  Status Dispatch(const Payload& payload, uint64_t token,
                  TransferTiming* timing) override {
    TransferTiming egress{};
    RR_ASSIGN_OR_RETURN(const rr::Buffer buffer,
                        payload.Materialize(&egress.wasm_io));
    MutexLock hop_lock(mutex_);
    const Stopwatch transfer_timer;
    RR_RETURN_IF_ERROR(sender_.SendBuffer(buffer, token));
    egress.transfer = transfer_timer.Elapsed();
    if (timing != nullptr) *timing += egress;
    return Status::Ok();
  }

  // Deliberately lock-free: eviction closes hops that may have a Dispatch
  // blocked on mutex_ (that is the point — a delivery timed out), so Close
  // must not queue behind them. shutdown(2) is safe against concurrent I/O
  // on the descriptor; the blocked send fails with EPIPE and the agent-side
  // worker dies with the connection, dropping any frame still in flight.
  void Close() override { sender_.ShutdownWire(); }

 private:
  Mutex mutex_;
  NetworkChannelSender sender_;
};

// The mux wire's agent hop: a thin facade over the per-agent MuxClient that
// the transport shares across every (source, target) pair bound for the same
// host:port. Dispatch is fully async — DispatchAsync's callback carries the
// remote *invocation* outcome (completion frame), so a handler failure fails
// the edge immediately instead of waiting out a delivery deadline.
class MuxAgentHop : public Hop {
 public:
  MuxAgentHop(std::shared_ptr<MuxClient> client, std::string function,
              Nanos transfer_deadline)
      : client_(std::move(client)),
        function_(std::move(function)),
        transfer_deadline_(transfer_deadline) {}

  TransferMode mode() const override { return TransferMode::kNetwork; }
  bool invoke_coupled() const override { return true; }

  // Always healthy: the shared client reconnects transparently on the next
  // stream (an agent-side idle sweep is absorbed, not an eviction event).
  // Eviction of this hop object is therefore harmless churn — Close is a
  // no-op because the client (and its wire) belongs to every hop bound for
  // this agent, not to this pair.
  bool healthy() const override { return true; }
  void Close() override {}

  Result<MemoryRegion> Forward(const Payload& /*payload*/, Shim& /*target*/,
                               TransferTiming* /*timing*/,
                               const MemoryRegion* /*into*/) override {
    return FailedPreconditionError(
        "delivery through a NodeAgent ingress is invoke-coupled; Dispatch the "
        "frame and consume the agent's delivery callback");
  }

  Status Dispatch(const Payload& /*payload*/, uint64_t /*token*/,
                  TransferTiming* /*timing*/) override {
    return FailedPreconditionError(
        "mux agent hops are completion-driven; use DispatchAsync");
  }

  Status DispatchAsync(const Payload& payload, uint64_t token,
                       TransferTiming* timing, DispatchDoneFn done) override {
    TransferTiming egress{};
    RR_ASSIGN_OR_RETURN(const rr::Buffer buffer,
                        payload.Materialize(&egress.wasm_io));
    if (timing != nullptr) *timing += egress;
    // The stream holds a refcount on the payload's chunks; the caller may
    // release its own reference as soon as this returns OK.
    return client_->StartStream(function_, buffer, token, transfer_deadline_,
                                std::move(done));
  }

 private:
  const std::shared_ptr<MuxClient> client_;
  const std::string function_;
  const Nanos transfer_deadline_;
};

class NetworkTransport : public Transport {
 public:
  ~NetworkTransport() override {
    // Close clients first (their in-flight streams fail with kUnavailable
    // and fire their callbacks), then stop the loop they ran on.
    for (auto& [key, client] : clients_) client->Close();
    clients_.clear();
    if (client_reactor_ != nullptr) client_reactor_->Stop();
  }

  TransferMode mode() const override { return TransferMode::kNetwork; }

  Result<std::unique_ptr<Hop>> Connect(Endpoint& /*source*/,
                                       const Endpoint& target,
                                       const TransportOptions& options) override {
    if (target.port == 0) {
      // No external ingress registered: create a loopback listener on demand
      // (the in-process stand-in for the remote node's shim port).
      RR_ASSIGN_OR_RETURN(NetworkChannelListener listener,
                          NetworkChannelListener::Bind(0));
      RR_ASSIGN_OR_RETURN(
          NetworkChannelSender sender,
          NetworkChannelSender::Connect(target.host, listener.port()));
      RR_ASSIGN_OR_RETURN(NetworkChannelReceiver receiver, listener.Accept());
      sender.set_transfer_deadline(options.transfer_deadline);
      receiver.set_transfer_deadline(options.transfer_deadline);
      return std::unique_ptr<Hop>(
          new NetworkLoopbackHop(std::move(sender), std::move(receiver)));
    }
    if (options.agent_wire == TransportOptions::AgentWire::kMux) {
      // Route through the target node's agent on the multiplexed dialect:
      // one shared client (one connection, one reactor) per remote agent,
      // every pair's transfers interleaved as streams.
      RR_ASSIGN_OR_RETURN(std::shared_ptr<MuxClient> client,
                          ClientFor(target.host, target.port));
      return std::unique_ptr<Hop>(new MuxAgentHop(
          std::move(client), target.shim->name(), options.transfer_deadline));
    }
    // Legacy sequential dialect: the preamble names the function, the agent
    // hands the connection to its shim's receiver.
    RR_ASSIGN_OR_RETURN(
        NetworkChannelSender sender,
        ConnectToRemoteFunction(target.host, target.port, target.shim->name()));
    sender.set_transfer_deadline(options.transfer_deadline);
    return std::unique_ptr<Hop>(new NetworkAgentHop(std::move(sender)));
  }

 private:
  Result<std::shared_ptr<MuxClient>> ClientFor(const std::string& host,
                                               uint16_t port) {
    MutexLock lock(clients_mutex_);
    if (client_reactor_ == nullptr) {
      RR_ASSIGN_OR_RETURN(client_reactor_, osal::Reactor::Start("mux-client"));
    }
    const std::string key = host + ":" + std::to_string(port);
    auto& client = clients_[key];
    if (client == nullptr) {
      client = MuxClient::Create(client_reactor_, host, port);
    }
    return client;
  }

  Mutex clients_mutex_;
  std::shared_ptr<osal::Reactor> client_reactor_;
  std::map<std::string, std::shared_ptr<MuxClient>> clients_;
};

}  // namespace

Result<InvokeOutcome> Hop::ForwardAndInvoke(const Payload& payload,
                                            Shim& target,
                                            TransferTiming* timing) {
  RR_ASSIGN_OR_RETURN(const MemoryRegion delivered,
                      Forward(payload, target, timing));
  MutexLock shim_lock(target.exec_mutex());
  // A successful invoke consumes the input region; a failed one leaves it
  // allocated in the target's sandbox — the guard reclaims it.
  RegionGuard guard(&target, delivered);
  auto outcome = target.InvokeOnRegion(delivered);
  if (outcome.ok()) guard.Dismiss();
  return outcome;
}

Status Hop::Dispatch(const Payload& /*payload*/, uint64_t /*token*/,
                     TransferTiming* /*timing*/) {
  return FailedPreconditionError(
      "hop is not invoke-coupled; use Forward/ForwardAndInvoke");
}

Status Hop::DispatchAsync(const Payload& payload, uint64_t token,
                          TransferTiming* timing, DispatchDoneFn done) {
  // Synchronous adapter: on the legacy wire the blocking Dispatch ends at
  // the delivery ack, so done(Ok) means delivered — the invocation outcome
  // still arrives through the agent's delivery callback (or the caller's
  // backstop deadline).
  RR_RETURN_IF_ERROR(Dispatch(payload, token, timing));
  if (done) done(Status::Ok());
  return Status::Ok();
}

std::unique_ptr<Transport> MakeUserSpaceTransport() {
  return std::make_unique<UserSpaceTransport>();
}
std::unique_ptr<Transport> MakeKernelTransport() {
  return std::make_unique<KernelTransport>();
}
std::unique_ptr<Transport> MakeNetworkTransport() {
  return std::make_unique<NetworkTransport>();
}

}  // namespace rr::core
