#include "core/workflow.h"

namespace rr::core {

Status WorkflowManager::Register(Endpoint endpoint) {
  if (endpoint.shim == nullptr) {
    return InvalidArgumentError("endpoint without shim");
  }
  if (endpoint.shim->spec().workflow != workflow_) {
    return PermissionDeniedError("function " + endpoint.shim->name() +
                                 " is not part of workflow " + workflow_);
  }
  const std::string name = endpoint.shim->name();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!endpoints_.emplace(name, std::move(endpoint)).second) {
    return AlreadyExistsError("function already registered: " + name);
  }
  return Status::Ok();
}

Status WorkflowManager::Unregister(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (endpoints_.erase(name) == 0) {
      return NotFoundError("unknown function: " + name);
    }
  }
  // Cached hops hold live connections whose peer shim is going away; a
  // re-registered replacement must reconnect, not inherit them.
  hops_.Evict(name);
  return Status::Ok();
}

Result<Endpoint*> WorkflowManager::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = endpoints_.find(name);
  if (it == endpoints_.end()) return NotFoundError("unknown function: " + name);
  return &it->second;
}

Result<TransferMode> WorkflowManager::ModeBetween(const std::string& source,
                                                  const std::string& target) {
  RR_ASSIGN_OR_RETURN(Endpoint* const a, Find(source));
  RR_ASSIGN_OR_RETURN(Endpoint* const b, Find(target));
  return SelectMode(a->location, b->location);
}

Result<Bytes> WorkflowManager::RunChain(const std::vector<std::string>& names,
                                        ByteSpan input) {
  if (names.empty()) return InvalidArgumentError("empty chain");

  RR_ASSIGN_OR_RETURN(Endpoint* current, Find(names[0]));
  InvokeOutcome outcome;
  {
    std::lock_guard<std::mutex> shim_lock(current->shim->exec_mutex());
    RR_ASSIGN_OR_RETURN(outcome, current->shim->DeliverAndInvoke(input));
  }

  for (size_t i = 1; i < names.size(); ++i) {
    RR_ASSIGN_OR_RETURN(Endpoint* const next, Find(names[i]));
    RR_ASSIGN_OR_RETURN(const std::shared_ptr<Hop> hop,
                        hops_.Get(*current, *next));
    if (hop->invoke_coupled()) {
      return FailedPreconditionError(
          "chain hop " + names[i] +
          " is behind a NodeAgent ingress; submit the chain through "
          "api::Runtime, whose executor consumes the agent's delivery "
          "callback");
    }
    RR_ASSIGN_OR_RETURN(outcome,
                        hop->ForwardAndInvoke(*current, outcome.output, *next));
    current = next;
  }

  // Materialize the final function's output for the platform egress.
  std::lock_guard<std::mutex> shim_lock(current->shim->exec_mutex());
  RR_ASSIGN_OR_RETURN(const ByteSpan view,
                      current->shim->OutputView(outcome.output));
  Bytes result(view.begin(), view.end());
  RR_RETURN_IF_ERROR(current->shim->ReleaseRegion(outcome.output));
  return result;
}

}  // namespace rr::core
