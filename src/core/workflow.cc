#include "core/workflow.h"

#include <thread>

namespace rr::core {

std::string_view TransferModeName(TransferMode mode) {
  switch (mode) {
    case TransferMode::kUserSpace: return "user-space";
    case TransferMode::kKernelSpace: return "kernel-space";
    case TransferMode::kNetwork: return "network";
  }
  return "?";
}

TransferMode SelectMode(const Location& source, const Location& target) {
  if (source.SameVm(target)) return TransferMode::kUserSpace;
  if (source.SameNode(target)) return TransferMode::kKernelSpace;
  return TransferMode::kNetwork;
}

Status WorkflowManager::Register(Endpoint endpoint) {
  if (endpoint.shim == nullptr) {
    return InvalidArgumentError("endpoint without shim");
  }
  if (endpoint.shim->spec().workflow != workflow_) {
    return PermissionDeniedError("function " + endpoint.shim->name() +
                                 " is not part of workflow " + workflow_);
  }
  const std::string name = endpoint.shim->name();
  if (!endpoints_.emplace(name, std::move(endpoint)).second) {
    return AlreadyExistsError("function already registered: " + name);
  }
  return Status::Ok();
}

Result<Endpoint*> WorkflowManager::Find(const std::string& name) {
  const auto it = endpoints_.find(name);
  if (it == endpoints_.end()) return NotFoundError("unknown function: " + name);
  return &it->second;
}

Result<TransferMode> WorkflowManager::ModeBetween(const std::string& source,
                                                  const std::string& target) {
  RR_ASSIGN_OR_RETURN(Endpoint* const a, Find(source));
  RR_ASSIGN_OR_RETURN(Endpoint* const b, Find(target));
  return SelectMode(a->location, b->location);
}

Result<InvokeOutcome> WorkflowManager::ForwardAndInvoke(
    Endpoint& source, const MemoryRegion& region, Endpoint& target) {
  const TransferMode mode = SelectMode(source.location, target.location);
  switch (mode) {
    case TransferMode::kUserSpace: {
      RR_ASSIGN_OR_RETURN(UserSpaceChannel channel,
                          UserSpaceChannel::Create(source.shim, target.shim));
      return channel.TransferAndInvoke(region);
    }
    case TransferMode::kKernelSpace: {
      const auto key = std::make_pair(source.shim->name(), target.shim->name());
      auto it = kernel_hops_.find(key);
      if (it == kernel_hops_.end()) {
        RR_ASSIGN_OR_RETURN(auto pair, MakeKernelChannelPair());
        it = kernel_hops_
                 .emplace(key, KernelHop{std::move(pair.first),
                                         std::move(pair.second)})
                 .first;
      }
      // The two shims are distinct sandboxes; run the send concurrently so a
      // payload larger than the kernel socket buffer cannot self-deadlock.
      Status send_status;
      std::thread sender([&] {
        send_status = it->second.sender.Send(*source.shim, region);
      });
      auto outcome = it->second.receiver.ReceiveAndInvoke(*target.shim);
      sender.join();
      RR_RETURN_IF_ERROR(send_status);
      return outcome;
    }
    case TransferMode::kNetwork: {
      const auto key = std::make_pair(source.shim->name(), target.shim->name());
      auto it = network_hops_.find(key);
      if (it == network_hops_.end()) {
        // Establish the hop through the target's ingress. When no external
        // ingress is registered, create a loopback listener on demand (the
        // in-process stand-in for the remote node's shim port).
        if (target.port == 0) {
          RR_ASSIGN_OR_RETURN(NetworkChannelListener listener,
                              NetworkChannelListener::Bind(0));
          RR_ASSIGN_OR_RETURN(
              NetworkChannelSender sender,
              NetworkChannelSender::Connect(target.host, listener.port()));
          RR_ASSIGN_OR_RETURN(NetworkChannelReceiver receiver, listener.Accept());
          it = network_hops_
                   .emplace(key, NetworkHop{std::move(sender), std::move(receiver)})
                   .first;
        } else {
          return UnimplementedError(
              "external network ingress requires the node-level relay; use "
              "NetworkChannelListener on the target node");
        }
      }
      Status send_status;
      std::thread sender([&] {
        send_status = it->second.sender.Send(*source.shim, region);
      });
      auto outcome = it->second.receiver.ReceiveAndInvoke(*target.shim);
      sender.join();
      RR_RETURN_IF_ERROR(send_status);
      return outcome;
    }
  }
  return InternalError("unreachable transfer mode");
}

Result<Bytes> WorkflowManager::RunChain(const std::vector<std::string>& names,
                                        ByteSpan input) {
  if (names.empty()) return InvalidArgumentError("empty chain");

  RR_ASSIGN_OR_RETURN(Endpoint* current, Find(names[0]));
  RR_ASSIGN_OR_RETURN(InvokeOutcome outcome,
                      current->shim->DeliverAndInvoke(input));

  for (size_t i = 1; i < names.size(); ++i) {
    RR_ASSIGN_OR_RETURN(Endpoint* const next, Find(names[i]));
    RR_ASSIGN_OR_RETURN(outcome,
                        ForwardAndInvoke(*current, outcome.output, *next));
    current = next;
  }

  // Materialize the final function's output for the platform egress.
  RR_ASSIGN_OR_RETURN(const ByteSpan view,
                      current->shim->OutputView(outcome.output));
  Bytes result(view.begin(), view.end());
  RR_RETURN_IF_ERROR(current->shim->ReleaseRegion(outcome.output));
  return result;
}

}  // namespace rr::core
