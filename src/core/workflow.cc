#include "core/workflow.h"

namespace rr::core {

Status WorkflowManager::Register(Endpoint endpoint) {
  if (endpoint.shim == nullptr && endpoint.pool != nullptr) {
    endpoint.shim = endpoint.pool->prototype();
  }
  if (endpoint.shim == nullptr) {
    return InvalidArgumentError("endpoint without shim or pool");
  }
  if (endpoint.pool == nullptr) {
    // Bare-shim registration (the pre-pool API): adopt it as a fixed pool of
    // one instance, binding registration-time behavior to the old serialized
    // semantics. Adoption is memoized, so a NodeAgent wrapping the same shim
    // shares this pool.
    auto adopted = ShimPool::Adopt(endpoint.shim);
    if (!adopted.ok()) return adopted.status();
    endpoint.pool = *adopted;
  }
  if (endpoint.shim->spec().workflow != workflow_) {
    return PermissionDeniedError("function " + endpoint.shim->name() +
                                 " is not part of workflow " + workflow_);
  }
  const std::string name = endpoint.shim->name();
  MutexLock lock(mutex_);
  if (!endpoints_.emplace(name, std::move(endpoint)).second) {
    return AlreadyExistsError("function already registered: " + name);
  }
  return Status::Ok();
}

Status WorkflowManager::Unregister(const std::string& name) {
  {
    MutexLock lock(mutex_);
    if (endpoints_.erase(name) == 0) {
      return NotFoundError("unknown function: " + name);
    }
  }
  // Cached hops hold live connections whose peer shim is going away; a
  // re-registered replacement must reconnect, not inherit them.
  hops_.Evict(name);
  return Status::Ok();
}

Result<Endpoint*> WorkflowManager::Find(const std::string& name) {
  MutexLock lock(mutex_);
  const auto it = endpoints_.find(name);
  if (it == endpoints_.end()) return NotFoundError("unknown function: " + name);
  return &it->second;
}

Result<TransferMode> WorkflowManager::ModeBetween(const std::string& source,
                                                  const std::string& target) {
  RR_ASSIGN_OR_RETURN(Endpoint* const a, Find(source));
  RR_ASSIGN_OR_RETURN(Endpoint* const b, Find(target));
  return SelectMode(a->location, b->location);
}

}  // namespace rr::core
