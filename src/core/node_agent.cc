#include "core/node_agent.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/log.h"
#include "core/mux_protocol.h"
#include "core/region_guard.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "osal/reactor.h"
#include "resilience/fault_injector.h"

namespace rr::core {
namespace {

obs::Counter& AgentAcceptRetries() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_agent_accept_retries_total",
      "Transient accept errors the agent backed off and retried");
  return *counter;
}

obs::Gauge& AgentLiveWorkers() {
  static obs::Gauge* gauge = obs::Registry::Get().gauge(
      "rr_agent_live_workers", "Connection worker threads currently alive");
  return *gauge;
}

obs::Counter& AgentTransfersRefused() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_agent_transfers_refused_total",
      "Frames refused with a typed error ack (pool exhausted)");
  return *counter;
}

obs::Counter& AgentTransfersCompleted() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_agent_transfers_completed_total",
      "Frames delivered and invoked to completion");
  return *counter;
}

obs::Gauge& AgentConnections() {
  static obs::Gauge* gauge = obs::Registry::Get().gauge(
      "rr_agent_connections", "Connections the node agent currently serves");
  return *gauge;
}

obs::Gauge& AgentStreamsInFlight() {
  static obs::Gauge* gauge = obs::Registry::Get().gauge(
      "rr_agent_streams_in_flight",
      "Mux streams currently staging or awaiting their completion frame");
  return *gauge;
}

obs::Counter& AgentCompletionFrames() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_agent_completion_frames_total",
      "Completion frames sent on the mux dialect (any outcome)");
  return *counter;
}

obs::Counter& AgentCompletionErrors() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_agent_completion_errors_total",
      "Completion frames that carried a non-OK invocation outcome");
  return *counter;
}

// Eager registration: agent series appear in scrapes at zero, before any
// connection, stream, or refusal has happened.
const bool g_agent_metrics_registered = [] {
  AgentAcceptRetries();
  AgentLiveWorkers();
  AgentTransfersRefused();
  AgentTransfersCompleted();
  AgentConnections();
  AgentStreamsInFlight();
  AgentCompletionFrames();
  AgentCompletionErrors();
  return true;
}();

// Routing preamble: [u16 LE name length][name bytes]. Kept fixed and tiny —
// routing metadata, never payload.
constexpr size_t kMaxFunctionName = 256;

// Per-connection cap on COMMITTED bytes: body bytes the agent has agreed to
// hold — granted-but-unreceived window credit plus bytes already staged or
// handed to the invoke pool. Opens that would commit past the cap are
// refused with a typed completion, grants that would are deferred until
// invokes drain, and data beyond a stream's granted window is
// connection-fatal — so the cap is a hard heap bound (within the staging
// buffers' 2x growth factor), not advisory. A single stream larger than the
// cap could never finish staging, so it is refused at open.
// Default for Options::max_conn_staged_bytes == 0.
constexpr size_t kMaxConnStagedBytes = 128 * 1024 * 1024;

// Concurrent staging streams one connection may hold. Bounds the stream
// table (an open frame is ~40 bytes; table entries must not be free to mint)
// while leaving room for the 10k-in-flight scale target over a handful of
// connections. Opens past it are refused with a typed completion.
// Default for Options::max_conn_streams == 0.
constexpr size_t kMaxConnStreams = 4096;

// Cap on outbound control bytes (acks, completions, window updates) queued
// for a peer that has stopped reading. Control frames are tiny (a completion
// is at most 528 bytes), so a backlog this deep means the peer is gone:
// exceeding it is connection-fatal.
constexpr size_t kMaxConnOutboundBytes = 4 * 1024 * 1024;

Status SendPreamble(osal::Connection& conn, const std::string& function) {
  if (function.empty() || function.size() > kMaxFunctionName) {
    return InvalidArgumentError("function name length invalid");
  }
  uint8_t header[2];
  StoreLE<uint16_t>(header, static_cast<uint16_t>(function.size()));
  RR_RETURN_IF_ERROR(conn.Send(ByteSpan(header, 2)));
  return conn.Send(AsBytes(function));
}

Result<std::string> ReadPreamble(osal::Connection& conn) {
  uint8_t header[2];
  RR_RETURN_IF_ERROR(conn.Receive(MutableByteSpan(header, 2)));
  const uint16_t length = LoadLE<uint16_t>(header);
  if (length == 0 || length > kMaxFunctionName) {
    return InvalidArgumentError("preamble name length invalid");
  }
  Bytes name(length);
  RR_RETURN_IF_ERROR(conn.Receive(name));
  return ToString(name);
}

// The legacy delivery ack: [magic][code][u16 LE detail length][detail].
Bytes EncodeAck(const Status& status) {
  std::string detail(status.message());
  if (detail.size() > kWireMaxAckDetail) detail.resize(kWireMaxAckDetail);
  Bytes out(kWireAckHeaderBytes + detail.size());
  out[0] = kWireAckMagic;
  out[1] = static_cast<uint8_t>(status.code());
  StoreLE<uint16_t>(out.data() + 2, static_cast<uint16_t>(detail.size()));
  std::memcpy(out.data() + kWireAckHeaderBytes, detail.data(), detail.size());
  return out;
}

// A mux completion frame: the invocation outcome, not just delivery.
Bytes EncodeCompletion(uint32_t stream_id, const Status& status) {
  std::string detail(status.message());
  if (detail.size() > kMuxMaxCompletionDetail) {
    detail.resize(kMuxMaxCompletionDetail);
  }
  MuxFrameHeader h;
  h.type = kMuxFrameCompletion;
  h.stream_id = stream_id;
  h.payload_length = static_cast<uint32_t>(detail.size());
  h.aux = static_cast<uint32_t>(status.code());
  Bytes out(kMuxFrameHeaderBytes + detail.size());
  EncodeMuxFrameHeader(h, out.data());
  std::memcpy(out.data() + kMuxFrameHeaderBytes, detail.data(), detail.size());
  return out;
}

Bytes EncodeWindowUpdate(uint32_t stream_id, uint32_t credit) {
  MuxFrameHeader h;
  h.type = kMuxFrameWindowUpdate;
  h.stream_id = stream_id;
  h.aux = credit;
  Bytes out(kMuxFrameHeaderBytes);
  EncodeMuxFrameHeader(h, out.data());
  return out;
}

}  // namespace

bool IsTransientAcceptError(const Status& status) {
  // The retryable class IS the transient-accept class: kResourceExhausted
  // (EMFILE/ENFILE/ENOMEM — the node is out of fds or memory *right now*;
  // connections already being served will finish and free them),
  // kUnavailable (ECONNABORTED/EPROTO/EAGAIN — the failure belongs to one
  // aborted peer, not the listener), kDeadlineExceeded (a peer that stalled
  // its own handshake).
  return status.IsRetryable();
}

// ---------------------------------------------------------------------------
// The reactor plane: shards of epoll loops own the wire, a fixed worker pool
// owns the invokes. Connections and streams are table entries, not threads.
// ---------------------------------------------------------------------------
struct NodeAgent::ReactorPlane {
  explicit ReactorPlane(NodeAgent* agent)
      : agent(agent),
        max_conn_streams(agent->options_.max_conn_streams
                             ? agent->options_.max_conn_streams
                             : kMaxConnStreams),
        max_conn_staged_bytes(agent->options_.max_conn_staged_bytes
                                  ? agent->options_.max_conn_staged_bytes
                                  : kMaxConnStagedBytes) {}

  // The half of a connection that invoke workers (and the loop) write to.
  // Outlives the Conn via shared_ptr: a worker finishing after teardown sees
  // `dead` and fails its send instead of racing a recycled descriptor.
  //
  // Sends NEVER block: a frame is appended to a bounded outbound queue and
  // the queue is drained as far as the socket allows (MSG_DONTWAIT); a
  // backlog arms kWritable on the owning shard's reactor, whose loop drains
  // the rest as the peer reads. One peer with a full socket buffer therefore
  // costs queue bytes, never a parked loop thread or invoke worker.
  struct WriteHandle {
    Mutex mutex;
    osal::UniqueFd fd RR_GUARDED_BY(mutex);
    bool dead RR_GUARDED_BY(mutex) = false;
    std::shared_ptr<osal::Reactor> reactor;  // the owning shard's loop
    std::deque<Bytes> outq RR_GUARDED_BY(mutex);
    // Bytes of outq.front() already on the wire.
    size_t front_sent RR_GUARDED_BY(mutex) = 0;
    size_t outq_bytes RR_GUARDED_BY(mutex) = 0;
    bool writable_armed RR_GUARDED_BY(mutex) = false;

    // Queues `frame` and drains. Callable from any thread (Reactor::Modify
    // is thread-safe). Returns false when the connection is dead, the
    // outbound backlog exceeded its cap, or the socket failed — all
    // connection-fatal for the caller.
    bool SendFrame(Bytes frame) {
      MutexLock lock(mutex);
      if (dead || !fd.valid()) return false;
      if (outq_bytes + frame.size() > kMaxConnOutboundBytes) return false;
      outq_bytes += frame.size();
      outq.push_back(std::move(frame));
      return DrainLocked();
    }

    // Sends queue frames until empty or EAGAIN; arms/disarms kWritable to
    // match the backlog. Returns false on a hard socket error.
    bool DrainLocked() RR_REQUIRES(mutex) {
      while (!outq.empty()) {
        const Bytes& front = outq.front();
        const ssize_t n =
            ::send(fd.get(), front.data() + front_sent,
                   front.size() - front_sent, MSG_DONTWAIT | MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            ArmLocked(true);
            return true;
          }
          return false;
        }
        front_sent += static_cast<size_t>(n);
        if (front_sent == front.size()) {
          outq_bytes -= front.size();
          outq.pop_front();
          front_sent = 0;
        }
      }
      ArmLocked(false);
      return true;
    }

    // Re-arms interest. A Modify failure is ignored: it only happens when
    // the loop already removed the fd (teardown underway), and the queued
    // frames die with the connection anyway.
    void ArmLocked(bool writable) {
      if (writable_armed == writable || reactor == nullptr) return;
      writable_armed = writable;
      (void)reactor->Modify(fd.get(),
                            osal::Epoll::kReadable |
                                (writable ? osal::Epoll::kWritable : 0u));
    }
  };

  // One staged frame handed to the invoke pool.
  struct InvokeJob {
    Entry entry;
    std::string function;
    Bytes body;
    obs::SpanContext trace;
    std::shared_ptr<WriteHandle> write;
    bool mux = false;
    uint32_t stream_id = 0;
    uint64_t token = 0;
    size_t shard = 0;
    uint64_t conn_id = 0;
    // Bytes this job holds against the connection's commitment cap.
    size_t staged = 0;
  };

  // One logical transfer on a mux connection, while its body is staging.
  // `body` grows geometrically as flow-controlled data arrives (never past
  // body_len, never more than ~2x the bytes received) — the declared length
  // is a promise, not an allocation, so a peer declaring huge bodies it
  // never sends costs the agent nothing.
  struct Stream {
    uint64_t token = 0;
    Entry entry;
    std::string function;
    uint64_t body_len = 0;
    Bytes body;
    uint64_t got = 0;
    // Total window bytes extended to the sender (initial + grants). Data
    // past it is a flow-control violation and connection-fatal, which is
    // what makes the commitment cap a hard bound.
    uint64_t credit = 0;
    // Body bytes consumed since the last window grant.
    size_t ungranted = 0;
    bool credit_deferred = false;
    obs::SpanContext trace;
    TimePoint last_data;

    // This stream's share of the connection's committed bytes: the sender
    // may deliver up to its granted credit, but never past the declared end.
    uint64_t committed() const { return std::min(body_len, credit); }
  };

  struct Conn {
    uint64_t id = 0;
    size_t shard = 0;
    int fd = -1;  // borrowed from `write` for reactor (de)registration
    std::shared_ptr<WriteHandle> write;
    TimePoint last_activity;

    // The receive state machine. Fixed-size pieces (preambles, headers, the
    // open payload) accumulate into `acc`; bodies stream straight into their
    // destination buffers.
    enum class Phase {
      kPreambleLen,
      kPreambleName,
      kMuxIntro,
      kLegacyHeader,
      kLegacyTrace,
      kLegacyBody,
      kMuxHeader,
      kMuxOpen,
      kMuxData,
      kMuxSkip,
    };
    Phase phase = Phase::kPreambleLen;
    uint8_t acc[kMuxMaxOpenPayload];
    size_t fixed_need = 2;
    size_t fixed_got = 0;

    // Legacy dialect: one function per connection, frames processed in
    // order (each frame's delivery ack must precede the next frame's).
    Entry entry;
    std::string function;
    FrameInfo lframe;
    Bytes lbody;
    size_t lbody_got = 0;
    std::deque<InvokeJob> legacy_queue;
    bool legacy_job_running = false;
    size_t legacy_inflight = 0;

    // Mux dialect.
    bool is_mux = false;
    MuxFrameHeader mh;
    size_t frame_left = 0;
    size_t skip_left = 0;
    std::unordered_map<uint32_t, Stream> streams;
    // Streams whose window grant was withheld by the commitment cap, in
    // arrival order; re-granted as invokes drain.
    std::deque<uint32_t> deferred_credit;
    size_t jobs_inflight = 0;
    // Sum of every staging stream's committed() plus every in-flight job's
    // staged bytes; admission and grants keep it under kMaxConnStagedBytes.
    size_t committed_bytes = 0;
  };

  struct Shard {
    std::shared_ptr<osal::Reactor> reactor;
    // Loop-thread-only: every access happens on this shard's reactor.
    std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns;
  };

  NodeAgent* const agent;
  // Options-resolved admission caps (0 in Options picks the build default).
  const size_t max_conn_streams;
  const size_t max_conn_staged_bytes;
  std::vector<Shard> shards;
  std::atomic<uint64_t> next_conn_id{1};
  std::atomic<size_t> rr_next{0};
  bool shut_down = false;

  // The invoke pool: the only threads that run Wasm.
  std::vector<std::thread> workers;
  Mutex queue_mutex;
  CondVar queue_cv;
  std::deque<InvokeJob> queue RR_GUARDED_BY(queue_mutex);
  bool queue_stopping RR_GUARDED_BY(queue_mutex) = false;

  Nanos SweepTick() const {
    Nanos tick = std::chrono::milliseconds(500);
    if (agent->options_.idle_timeout > Nanos{0}) {
      tick = std::min(tick, agent->options_.idle_timeout / 2);
    }
    if (agent->options_.transfer_deadline > Nanos{0}) {
      tick = std::min(tick, agent->options_.transfer_deadline / 2);
    }
    return std::max<Nanos>(tick, std::chrono::milliseconds(10));
  }

  Status Start() {
    RR_RETURN_IF_ERROR(osal::SetNonBlocking(agent->listener_.fd(), true));
    const size_t hw =
        std::max<size_t>(1, std::thread::hardware_concurrency());
    size_t nshards = agent->options_.shards;
    if (nshards == 0) nshards = std::min<size_t>(4, std::max<size_t>(1, hw / 4));
    size_t nworkers = agent->options_.invoke_workers;
    if (nworkers == 0) {
      nworkers = std::max<size_t>(2, std::min<size_t>(8, hw / 2));
    }
    shards.resize(nshards);
    for (size_t i = 0; i < nshards; ++i) {
      RR_ASSIGN_OR_RETURN(
          shards[i].reactor,
          osal::Reactor::Start("agent-shard-" + std::to_string(i)));
    }
    RR_RETURN_IF_ERROR(
        shards[0].reactor->Add(agent->listener_.fd(), osal::Epoll::kReadable,
                               [this](uint32_t) { AcceptReady(); }));
    const Nanos tick = SweepTick();
    for (size_t i = 0; i < nshards; ++i) {
      shards[i].reactor->AddTicker(tick, [this, i] { Sweep(i); });
    }
    for (size_t i = 0; i < nworkers; ++i) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
    return Status::Ok();
  }

  void Shutdown() {
    if (shut_down) return;
    shut_down = true;
    for (Shard& shard : shards) {
      if (shard.reactor) shard.reactor->Stop();
    }
    // Loop threads are joined: connection tables are now plane-owned.
    size_t closed = 0;
    size_t open_streams = 0;
    for (Shard& shard : shards) {
      for (auto& [id, conn] : shard.conns) {
        MutexLock lock(conn->write->mutex);
        conn->write->dead = true;
        conn->write->fd.Reset();
        open_streams += conn->streams.size();
        ++closed;
      }
      shard.conns.clear();
    }
    if (open_streams > 0) {
      AgentStreamsInFlight().Sub(static_cast<int64_t>(open_streams));
    }
    if (closed > 0) AgentConnections().Sub(static_cast<int64_t>(closed));
    agent->active_connections_.store(0, std::memory_order_relaxed);
    size_t dropped_streams = 0;
    {
      MutexLock lock(queue_mutex);
      queue_stopping = true;
      for (const InvokeJob& job : queue) {
        if (job.mux) ++dropped_streams;
      }
      queue.clear();
    }
    if (dropped_streams > 0) {
      AgentStreamsInFlight().Sub(static_cast<int64_t>(dropped_streams));
    }
    queue_cv.notify_all();
    for (std::thread& worker : workers) {
      if (worker.joinable()) worker.join();
    }
    workers.clear();
  }

  // --- accept path (shard 0's loop) ---

  void AcceptReady() {  // rr-lint: reactor-thread
    while (true) {
      Result<osal::Connection> accepted = agent->listener_.TryAccept();
      if (!accepted.ok()) {
        if (agent->stopping_.load()) return;
        if (IsTransientAcceptError(accepted.status())) {
          AgentAcceptRetries().Inc();
          RR_LOG(Warning) << "node agent: transient accept error (retrying): "
                          << accepted.status();
        } else {
          RR_LOG(Warning) << "node agent: accept failed: "
                          << accepted.status();
        }
        return;
      }
      if (!accepted->valid()) return;  // drained the backlog
      accepted->SetNoDelay(true);
      auto conn = std::make_shared<Conn>();
      conn->id = next_conn_id.fetch_add(1, std::memory_order_relaxed);
      conn->shard = rr_next.fetch_add(1, std::memory_order_relaxed) %
                    shards.size();
      conn->write = std::make_shared<WriteHandle>();
      conn->write->fd = accepted->TakeFd();
      conn->write->reactor = shards[conn->shard].reactor;
      conn->fd = conn->write->fd.get();
      conn->last_activity = Now();
      // Hand off to the owning shard's loop; every later touch of this Conn
      // happens there.
      shards[conn->shard].reactor->Post(
          [this, conn]() mutable { Adopt(std::move(conn)); });
    }
  }

  void Adopt(std::shared_ptr<Conn> conn) {
    const size_t si = conn->shard;
    const uint64_t id = conn->id;
    const Status added = shards[si].reactor->Add(
        conn->fd, osal::Epoll::kReadable,
        [this, si, id](uint32_t events) { OnConnEvent(si, id, events); });
    if (!added.ok()) {
      MutexLock lock(conn->write->mutex);
      conn->write->dead = true;
      conn->write->fd.Reset();
      return;
    }
    shards[si].conns.emplace(id, std::move(conn));
    agent->active_connections_.fetch_add(1, std::memory_order_relaxed);
    AgentConnections().Add(1);
  }

  // --- event path (each shard's loop) ---

  void OnConnEvent(size_t si, uint64_t id, uint32_t events) {  // rr-lint: reactor-thread
    const auto it = shards[si].conns.find(id);
    if (it == shards[si].conns.end()) return;  // stale event past teardown
    std::shared_ptr<Conn> conn = it->second;
    if (events & osal::Epoll::kError) {
      Teardown(si, conn);
      return;
    }
    if (events & osal::Epoll::kWritable) {
      // The peer caught up on its socket buffer: drain the queued control
      // frames (completions, acks, window updates) it had backed up.
      MutexLock lock(conn->write->mutex);
      const bool drained = conn->write->DrainLocked();
      lock.unlock();
      if (!drained) {
        Teardown(si, conn);
        return;
      }
    }
    if ((events & osal::Epoll::kReadable) == 0) return;
    uint8_t buf[64 * 1024];
    // Bounded drain: level-triggered epoll re-arms anything left, so capping
    // the per-event read keeps one firehose connection from starving the
    // shard's other connections.
    for (int round = 0; round < 16; ++round) {
      // Never blocks (MSG_DONTWAIT).  rr-lint: allow(reactor-blocking)
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        conn->last_activity = Now();
        if (!Feed(*conn, ByteSpan(buf, static_cast<size_t>(n)))) {
          Teardown(si, conn);
          return;
        }
        if (static_cast<size_t>(n) < sizeof(buf)) return;
        continue;
      }
      if (n == 0) {  // peer closed
        Teardown(si, conn);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      Teardown(si, conn);
      return;
    }
  }

  void ArmFixed(Conn& c, Conn::Phase phase, size_t need) {
    c.phase = phase;
    c.fixed_need = need;
    c.fixed_got = 0;
  }

  // Consumes `data` through the state machine. Returns false on anything
  // connection-fatal (the byte stream past the fault cannot be re-framed).
  bool Feed(Conn& c, ByteSpan data) {
    while (!data.empty()) {
      switch (c.phase) {
        case Conn::Phase::kLegacyBody: {
          const size_t n =
              std::min<size_t>(data.size(), c.lbody.size() - c.lbody_got);
          std::memcpy(c.lbody.data() + c.lbody_got, data.data(), n);
          c.lbody_got += n;
          data = data.subspan(n);
          if (c.lbody_got == c.lbody.size()) FinishLegacyFrame(c);
          continue;
        }
        case Conn::Phase::kMuxData: {
          const auto it = c.streams.find(c.mh.stream_id);
          if (it == c.streams.end()) {
            // Stream swept mid-frame (stalled past the deadline): the rest
            // of the chunk is framing noise, skip it.
            c.skip_left = c.frame_left;
            c.frame_left = 0;
            c.phase = Conn::Phase::kMuxSkip;
            continue;
          }
          Stream& s = it->second;
          const size_t n = std::min<size_t>(data.size(), c.frame_left);
          if (s.body.size() < s.got + n) {
            // Geometric growth, capped at the declared length: memory tracks
            // bytes actually received (amortized one extra copy), never the
            // peer's declaration.
            const uint64_t doubled =
                std::max<uint64_t>(s.body.size() * 2, 64 * 1024);
            s.body.resize(static_cast<size_t>(std::min<uint64_t>(
                s.body_len, std::max<uint64_t>(doubled, s.got + n))));
          }
          std::memcpy(s.body.data() + s.got, data.data(), n);
          s.got += n;
          s.ungranted += n;
          s.last_data = Now();
          c.frame_left -= n;
          data = data.subspan(n);
          if (c.frame_left == 0) {
            if (!MaybeGrant(c, c.mh.stream_id, s)) return false;
            if (s.got == s.body_len) {
              CompleteStreamStaging(c, c.mh.stream_id, s);
            }
            ArmFixed(c, Conn::Phase::kMuxHeader, kMuxFrameHeaderBytes);
          }
          continue;
        }
        case Conn::Phase::kMuxSkip: {
          const size_t n = std::min<size_t>(data.size(), c.skip_left);
          c.skip_left -= n;
          data = data.subspan(n);
          if (c.skip_left == 0) {
            ArmFixed(c, Conn::Phase::kMuxHeader, kMuxFrameHeaderBytes);
          }
          continue;
        }
        default:
          break;
      }
      // Fixed-size accumulation phases.
      const size_t n = std::min<size_t>(data.size(), c.fixed_need - c.fixed_got);
      std::memcpy(c.acc + c.fixed_got, data.data(), n);
      c.fixed_got += n;
      data = data.subspan(n);
      if (c.fixed_got < c.fixed_need) return true;  // wait for more bytes
      if (!ProcessFixed(c)) return false;
    }
    return true;
  }

  bool ProcessFixed(Conn& c) {
    switch (c.phase) {
      case Conn::Phase::kPreambleLen: {
        const uint16_t length = LoadLE<uint16_t>(c.acc);
        if (length == kMuxPreambleMagic) {
          ArmFixed(c, Conn::Phase::kMuxIntro, kMuxPreambleBytes - 2);
          return true;
        }
        if (length == 0 || length > kMaxFunctionName) {
          RR_LOG(Warning) << "node agent: preamble name length invalid";
          return false;
        }
        ArmFixed(c, Conn::Phase::kPreambleName, length);
        return true;
      }
      case Conn::Phase::kMuxIntro: {
        if (c.acc[0] != kMuxVersion) {
          RR_LOG(Warning) << "node agent: unsupported mux version "
                          << static_cast<int>(c.acc[0]);
          return false;
        }
        c.is_mux = true;
        ArmFixed(c, Conn::Phase::kMuxHeader, kMuxFrameHeaderBytes);
        return true;
      }
      case Conn::Phase::kPreambleName: {
        const std::string name(reinterpret_cast<const char*>(c.acc),
                               c.fixed_need);
        if (!ResolveEntry(name, &c.entry)) {
          // Matches the threaded plane: unknown function drops the
          // connection (the legacy dialect has no pre-delivery error frame).
          RR_LOG(Warning) << "node agent: no such function: " << name;
          return false;
        }
        c.function = name;
        ArmFixed(c, Conn::Phase::kLegacyHeader, 16);
        return true;
      }
      case Conn::Phase::kLegacyHeader: {
        const uint64_t length_field = LoadLE<uint64_t>(c.acc);
        c.lframe = FrameInfo{};
        c.lframe.length = length_field & ~kFrameTraceFlag;
        c.lframe.token = LoadLE<uint64_t>(c.acc + 8);
        if (c.lframe.length > serde::kMaxFrameBytes ||
            c.lframe.length > UINT32_MAX) {
          RR_LOG(Warning) << "node agent: implausible frame length";
          return false;
        }
        if (length_field & kFrameTraceFlag) {
          ArmFixed(c, Conn::Phase::kLegacyTrace, 16);
        } else {
          BeginLegacyBody(c);
        }
        return true;
      }
      case Conn::Phase::kLegacyTrace: {
        c.lframe.trace_id = LoadLE<uint64_t>(c.acc);
        c.lframe.parent_span = LoadLE<uint64_t>(c.acc + 8);
        BeginLegacyBody(c);
        return true;
      }
      case Conn::Phase::kMuxHeader: {
        const MuxFrameHeader mh = DecodeMuxFrameHeader(c.acc);
        const Status valid = ValidateMuxFrameHeader(mh, /*receiver_is_agent=*/true);
        if (!valid.ok()) {
          RR_LOG(Warning) << "node agent: " << valid;
          return false;
        }
        c.mh = mh;
        switch (mh.type) {
          case kMuxFrameOpen:
            ArmFixed(c, Conn::Phase::kMuxOpen, mh.payload_length);
            return true;
          case kMuxFrameData: {
            const auto it = c.streams.find(mh.stream_id);
            if (it == c.streams.end()) {
              // Unknown stream: tolerated (a chunk racing a cancel/sweep).
              c.skip_left = mh.payload_length;
              c.phase = Conn::Phase::kMuxSkip;
              return true;
            }
            if (it->second.got + mh.payload_length > it->second.body_len) {
              RR_LOG(Warning)
                  << "node agent: mux data overruns the declared body";
              return false;
            }
            if (it->second.got + mh.payload_length > it->second.credit) {
              // Flow-control violation: the peer sent past its granted
              // window. Tolerating it would let a hostile sender ignore
              // deferred grants and balloon the heap anyway, so it is
              // connection-fatal.
              RR_LOG(Warning)
                  << "node agent: mux data exceeds the granted window";
              return false;
            }
            c.frame_left = mh.payload_length;
            c.phase = Conn::Phase::kMuxData;
            return true;
          }
          case kMuxFrameCancel: {
            DropStream(c, mh.stream_id);
            ArmFixed(c, Conn::Phase::kMuxHeader, kMuxFrameHeaderBytes);
            return true;
          }
          default:  // validated above; agent never receives the others
            return false;
        }
      }
      case Conn::Phase::kMuxOpen:
        return ProcessOpen(c);
      default:
        return false;
    }
  }

  void BeginLegacyBody(Conn& c) {
    c.lbody = Bytes(c.lframe.length);
    c.lbody_got = 0;
    if (c.lframe.length == 0) {
      FinishLegacyFrame(c);
    } else {
      c.phase = Conn::Phase::kLegacyBody;
    }
  }

  void FinishLegacyFrame(Conn& c) {
    InvokeJob job;
    job.entry = c.entry;
    job.function = c.function;
    job.body = std::move(c.lbody);
    job.trace = obs::SpanContext{c.lframe.trace_id, c.lframe.parent_span};
    job.write = c.write;
    job.mux = false;
    job.token = c.lframe.token;
    job.shard = c.shard;
    job.conn_id = c.id;
    c.lbody = Bytes();
    c.legacy_queue.push_back(std::move(job));
    ++c.legacy_inflight;
    PumpLegacy(c);
    ArmFixed(c, Conn::Phase::kLegacyHeader, 16);
  }

  // The legacy dialect is sequential: one job at a time per connection, in
  // frame order, so delivery acks leave the wire in the order the sender
  // expects them.
  void PumpLegacy(Conn& c) {
    if (c.legacy_job_running || c.legacy_queue.empty()) return;
    c.legacy_job_running = true;
    InvokeJob job = std::move(c.legacy_queue.front());
    c.legacy_queue.pop_front();
    Enqueue(std::move(job));
  }

  bool ProcessOpen(Conn& c) {
    const uint8_t* p = c.acc;
    const size_t len = c.fixed_need;
    if (len < 18) {
      RR_LOG(Warning) << "node agent: truncated mux open frame";
      return false;
    }
    const uint64_t token = LoadLE<uint64_t>(p);
    const uint64_t body_len = LoadLE<uint64_t>(p + 8);
    const uint16_t name_len = LoadLE<uint16_t>(p + 16);
    const bool traced = (c.mh.flags & kMuxFlagTrace) != 0;
    const size_t expect = 18 + name_len + (traced ? 16 : 0);
    if (name_len == 0 || name_len > kMaxFunctionName || len != expect) {
      RR_LOG(Warning) << "node agent: malformed mux open frame";
      return false;
    }
    if (body_len > serde::kMaxFrameBytes || body_len > UINT32_MAX) {
      RR_LOG(Warning) << "node agent: implausible mux body length";
      return false;
    }
    if (c.streams.count(c.mh.stream_id) != 0) {
      RR_LOG(Warning) << "node agent: duplicate mux stream id "
                      << c.mh.stream_id;
      return false;
    }
    std::string function(reinterpret_cast<const char*>(p + 18), name_len);
    obs::SpanContext trace;
    if (traced) {
      trace.trace_id = LoadLE<uint64_t>(p + 18 + name_len);
      trace.span_id = LoadLE<uint64_t>(p + 18 + name_len + 8);
    }
    Entry entry;
    if (!ResolveEntry(function, &entry)) {
      // Unlike the legacy dialect, an unknown function is stream-fatal, not
      // connection-fatal: the sender gets a typed completion immediately.
      return RefuseStream(c, c.mh.stream_id,
                          NotFoundError("no such function: " + function));
    }
    // Admission: an open is a commitment to hold body bytes. Refuse — typed,
    // stream-fatal — anything the caps cannot honor, BEFORE any allocation:
    // a handful of ~40-byte open frames must never reserve gigabytes.
    const uint64_t commit =
        std::min<uint64_t>(body_len, kMuxInitialWindow);
    Status refusal = Status::Ok();
    if (c.streams.size() >= max_conn_streams) {
      refusal = ResourceExhaustedError(
          "connection exceeds " + std::to_string(max_conn_streams) +
          " concurrent streams");
    } else if (body_len > max_conn_staged_bytes) {
      // Larger than the whole commitment budget: the stream could never
      // finish staging — fail it now instead of stalling it to a deadline.
      refusal = ResourceExhaustedError(
          "declared body exceeds the agent's staging capacity");
    } else if (c.committed_bytes + commit > max_conn_staged_bytes) {
      refusal = ResourceExhaustedError(
          "agent staging capacity exhausted; retry after in-flight "
          "transfers drain");
    }
    if (!refusal.ok()) {
      agent->transfers_refused_.fetch_add(1, std::memory_order_relaxed);
      AgentTransfersRefused().Inc();
      return RefuseStream(c, c.mh.stream_id, refusal);
    }
    Stream s;
    s.token = token;
    s.entry = std::move(entry);
    s.function = std::move(function);
    s.body_len = body_len;
    s.credit = kMuxInitialWindow;  // what the sender starts with (protocol)
    s.trace = trace;
    s.last_data = Now();
    c.committed_bytes += commit;
    AgentStreamsInFlight().Add(1);
    const auto [it, inserted] = c.streams.emplace(c.mh.stream_id, std::move(s));
    (void)inserted;
    if (body_len == 0) CompleteStreamStaging(c, c.mh.stream_id, it->second);
    ArmFixed(c, Conn::Phase::kMuxHeader, kMuxFrameHeaderBytes);
    return true;
  }

  // Stream-fatal typed refusal: the sender's edge fails immediately with
  // `reason` while the connection — and every other stream on it — lives
  // on. False when even the completion could not be queued (dead wire).
  bool RefuseStream(Conn& c, uint32_t stream_id, const Status& reason) {
    AgentCompletionFrames().Inc();
    AgentCompletionErrors().Inc();
    if (!c.write->SendFrame(EncodeCompletion(stream_id, reason))) return false;
    ArmFixed(c, Conn::Phase::kMuxHeader, kMuxFrameHeaderBytes);
    return true;
  }

  bool ResolveEntry(const std::string& name, Entry* out) {
    MutexLock lock(agent->mutex_);
    const auto it = agent->functions_.find(name);
    if (it == agent->functions_.end()) return false;
    *out = it->second;
    return true;
  }

  // Additional bytes a grant of the stream's ungranted credit would commit
  // the connection to hold (zero once the remaining grants only cover bytes
  // the declared end already bounds — finishing streams always drain).
  static uint64_t GrantDelta(const Stream& s) {
    return std::min(s.body_len, s.credit + s.ungranted) - s.committed();
  }

  // Re-grants consumed window once enough accumulated, unless the
  // commitment cap says the peer should back up on the wire for now.
  bool MaybeGrant(Conn& c, uint32_t stream_id, Stream& s) {
    if (s.got >= s.body_len) return true;  // fully received: no more credit
    if (s.ungranted < kMuxWindowUpdateThreshold) return true;
    if (c.committed_bytes + GrantDelta(s) > max_conn_staged_bytes) {
      if (!s.credit_deferred) {
        s.credit_deferred = true;
        c.deferred_credit.push_back(stream_id);
      }
      return true;
    }
    if (resilience::FaultInjector::Instance().ShouldFire(
            resilience::FaultSite::kAgentStarveGrant)) {
      // Withhold a DUE window update: the sender stalls on credit until its
      // progress deadline types the edge kDeadlineExceeded.
      return true;
    }
    return GrantNow(c, stream_id, s);
  }

  bool GrantNow(Conn& c, uint32_t stream_id, Stream& s) {
    const uint32_t grant = static_cast<uint32_t>(s.ungranted);
    c.committed_bytes += GrantDelta(s);
    s.credit += grant;
    s.ungranted = 0;
    s.credit_deferred = false;
    return c.write->SendFrame(EncodeWindowUpdate(stream_id, grant));
  }

  bool FlushDeferredCredit(Conn& c) {
    while (!c.deferred_credit.empty()) {
      const uint32_t stream_id = c.deferred_credit.front();
      const auto it = c.streams.find(stream_id);
      if (it == c.streams.end() || !it->second.credit_deferred) {
        c.deferred_credit.pop_front();  // completed or swept meanwhile
        continue;
      }
      if (c.committed_bytes + GrantDelta(it->second) > max_conn_staged_bytes) {
        return true;  // still full; re-checked as more invokes drain
      }
      c.deferred_credit.pop_front();
      if (!GrantNow(c, stream_id, it->second)) return false;
    }
    return true;
  }

  // The stream's body is fully staged: hand it to the invoke pool. The
  // stream leaves the table (its identity lives on in the job), but stays
  // counted in-flight until its completion frame goes out, and its body
  // bytes stay committed (job.staged) until the invoke drains them.
  void CompleteStreamStaging(Conn& c, uint32_t stream_id, Stream& s) {
    InvokeJob job;
    job.entry = std::move(s.entry);
    job.function = std::move(s.function);
    job.body = std::move(s.body);
    job.trace = s.trace;
    job.write = c.write;
    job.mux = true;
    job.stream_id = stream_id;
    job.token = s.token;
    job.shard = c.shard;
    job.conn_id = c.id;
    job.staged = s.body_len;
    c.streams.erase(stream_id);
    ++c.jobs_inflight;
    Enqueue(std::move(job));
  }

  void DropStream(Conn& c, uint32_t stream_id) {
    const auto it = c.streams.find(stream_id);
    if (it == c.streams.end()) return;  // tolerated: cancel racing completion
    c.committed_bytes -= it->second.committed();
    AgentStreamsInFlight().Sub(1);
    c.streams.erase(it);
  }

  void Teardown(size_t si, const std::shared_ptr<Conn>& conn) {
    (void)shards[si].reactor->Remove(conn->fd);
    {
      MutexLock lock(conn->write->mutex);
      conn->write->dead = true;
      conn->write->fd.Reset();
    }
    if (!conn->streams.empty()) {
      AgentStreamsInFlight().Sub(static_cast<int64_t>(conn->streams.size()));
      conn->streams.clear();
    }
    shards[si].conns.erase(conn->id);
    agent->active_connections_.fetch_sub(1, std::memory_order_relaxed);
    AgentConnections().Sub(1);
  }

  // Periodic per-shard sweep: wedged mid-frame connections, stalled streams,
  // and idle connections (the PR 5 "header park stays unbounded" contract is
  // retired — senders reconnect transparently).
  void Sweep(size_t si) {  // rr-lint: reactor-thread
    const TimePoint now = Now();
    const Nanos deadline = agent->options_.transfer_deadline;
    const Nanos idle = agent->options_.idle_timeout;
    std::vector<std::shared_ptr<Conn>> doomed;
    for (auto& [id, conn] : shards[si].conns) {
      Conn& c = *conn;
      const bool at_frame_boundary =
          (c.phase == Conn::Phase::kPreambleLen ||
           c.phase == Conn::Phase::kLegacyHeader ||
           c.phase == Conn::Phase::kMuxHeader) &&
          c.fixed_got == 0;
      if (deadline > Nanos{0} && !at_frame_boundary &&
          now - c.last_activity > deadline) {
        doomed.push_back(conn);
        continue;
      }
      if (deadline > Nanos{0} && c.is_mux) {
        std::vector<uint32_t> stale;
        for (const auto& [stream_id, s] : c.streams) {
          if (s.got < s.body_len && now - s.last_data > deadline) {
            stale.push_back(stream_id);
          }
        }
        bool wire_dead = false;
        for (const uint32_t stream_id : stale) {
          AgentCompletionFrames().Inc();
          AgentCompletionErrors().Inc();
          if (!c.write->SendFrame(EncodeCompletion(
                  stream_id,
                  DeadlineExceededError(
                      "stream stalled past the transfer deadline")))) {
            // The completion could not even be queued (dead wire or a peer
            // buried past the outbound cap): connection-fatal, matching
            // GrantNow and ProcessOpen — anything the peer reads after a
            // dropped frame would be garbage.
            wire_dead = true;
            break;
          }
          DropStream(c, stream_id);
        }
        if (wire_dead) {
          doomed.push_back(conn);
          continue;
        }
      }
      const bool quiescent = at_frame_boundary && c.streams.empty() &&
                             c.jobs_inflight == 0 && c.legacy_inflight == 0;
      if (idle > Nanos{0} && quiescent && now - c.last_activity > idle) {
        doomed.push_back(conn);
      }
    }
    for (const auto& conn : doomed) {
      if (shards[si].conns.count(conn->id) != 0) Teardown(si, conn);
    }
  }

  // --- invoke pool ---

  void Enqueue(InvokeJob job) {
    {
      MutexLock lock(queue_mutex);
      if (queue_stopping) {
        if (job.mux) AgentStreamsInFlight().Sub(1);
        return;
      }
      queue.push_back(std::move(job));
    }
    queue_cv.notify_one();
  }

  void WorkerLoop() {
    while (true) {
      InvokeJob job;
      {
        MutexLock lock(queue_mutex);
        queue_cv.wait(lock, [this]() RR_REQUIRES(queue_mutex) {
          return queue_stopping || !queue.empty();
        });
        if (queue_stopping) return;
        job = std::move(queue.front());
        queue.pop_front();
      }
      RunJob(std::move(job));
    }
  }

  void RunJob(InvokeJob job) {
    if (job.mux) {
      // Fault-injection hooks (resilience/fault_injector.h): one relaxed
      // atomic load each while disarmed.
      auto& faults = resilience::FaultInjector::Instance();
      if (faults.ShouldFire(resilience::FaultSite::kAgentDelayCompletion)) {
        // Hold the invoke long enough for the sender's backstop to give up;
        // the late delivery then exercises its token-rejection path.
        PreciseSleep(faults.delay(resilience::FaultSite::kAgentDelayCompletion));
      }
      if (faults.ShouldFire(resilience::FaultSite::kAgentDropCompletion)) {
        // A worker that dies right after the receive: the frame is
        // swallowed — no invoke, no completion frame, no delivery — but the
        // connection's own bookkeeping still runs, so the wire stays
        // healthy and only the sender's backstop deadline notices.
        AgentStreamsInFlight().Sub(1);
        shards[job.shard].reactor->Post(
            [this, si = job.shard, id = job.conn_id, staged = job.staged] {
              OnJobDone(si, id, /*mux=*/true, staged, /*fatal=*/false);
            });
        return;
      }
    }
    Status result = Status::Ok();
    bool acked_ok = false;    // legacy: the OK delivery ack already left
    bool conn_fatal = false;  // the wire desynced: tear the connection down
    std::optional<InvokeOutcome> outcome;
    ShimLease instance;
    auto lease = job.entry.pool->Lease();
    if (!lease.ok()) {
      // Pool exhausted: refuse with a typed error the sender can act on.
      // Count BEFORE the refusal leaves: a sender that observed the typed
      // error must also observe the count.
      agent->transfers_refused_.fetch_add(1, std::memory_order_relaxed);
      AgentTransfersRefused().Inc();
      result = ResourceExhaustedError("no instance available for " +
                                      job.function + ": " +
                                      lease.status().message());
    } else {
      instance = std::move(*lease);
      // The frame's trace context ({0,0} on untraced frames) is installed
      // for the whole land+invoke: the agent-side spans join the SENDER's
      // trace, which is what stitches a cross-process chain together.
      obs::ScopedTraceContext frame_ctx(job.trace);
      Result<InvokeOutcome> invoked = [&]() -> Result<InvokeOutcome> {
        // The exec mutex synchronizes the delivery + invoke against readers
        // of regions earlier invocations left resident in this instance.
        MutexLock shim_lock(instance->exec_mutex());
        RR_TRACE_SPAN(ingress_span, "agent", "ingress:" + job.function);
        RR_ASSIGN_OR_RETURN(
            const MemoryRegion region,
            instance->PrepareInput(static_cast<uint32_t>(job.body.size())));
        // A failed land or invoke leaves the region allocated; this
        // instance returns to the pool and lives on, so it must not leak.
        RegionGuard guard(instance.get(), region);
        RR_RETURN_IF_ERROR(instance->WriteInput(
            region, rr::BufferView(ByteSpan(job.body.data(), job.body.size()))));
        if (ingress_span) ingress_span->End();
        if (!job.mux) {
          // Legacy contract: the delivery ack leaves once the payload has
          // landed, BEFORE the invoke — the sender's ack wait ends at
          // delivery, not at the invocation outcome. (Queued, not written
          // inline: the connection's outbound queue keeps frame order.)
          if (!job.write->SendFrame(EncodeAck(Status::Ok()))) {
            conn_fatal = true;  // ack stream is dead: channel unusable
            return UnavailableError("agent connection closed");
          }
          acked_ok = true;
        }
        RR_TRACE_SPAN(invoke_span, "agent", "invoke:" + job.function);
        auto invoked_inner = instance->InvokeOnRegion(region);
        if (invoke_span) invoke_span->End();
        if (invoked_inner.ok()) guard.Dismiss();
        return invoked_inner;
      }();
      if (invoked.ok()) {
        outcome = std::move(*invoked);
      } else {
        result = invoked.status();
      }
    }

    // Report the outcome on the wire. Mux: a completion frame either way —
    // the invocation result reaches the sender immediately. Legacy: an error
    // ack only if the OK delivery ack has not left yet (a landing failure or
    // refusal keeps the channel synchronized, exactly like the threaded
    // plane's reject-in-sync path); an invoke failure after the ack sends
    // nothing — the sender's delivery contract was already satisfied.
    if (outcome.has_value()) {
      // Count BEFORE the completion leaves: a sender that observed the
      // completion frame must also observe the count (the same contract the
      // refusal counter keeps above).
      agent->transfers_completed_.fetch_add(1, std::memory_order_relaxed);
      AgentTransfersCompleted().Inc();
    }
    if (job.mux) {
      AgentCompletionFrames().Inc();
      if (!result.ok()) AgentCompletionErrors().Inc();
      const bool sent =
          job.write->SendFrame(EncodeCompletion(job.stream_id, result));
      AgentStreamsInFlight().Sub(1);
      if (!sent) conn_fatal = true;
    } else if (!conn_fatal && !acked_ok && !result.ok()) {
      if (!job.write->SendFrame(EncodeAck(result))) conn_fatal = true;
    }

    if (outcome.has_value()) {
      if (job.entry.on_delivery) {
        job.entry.on_delivery(job.function, *outcome, job.token,
                              std::move(instance));
      } else {
        // Nobody consumes the output: release it to keep the heap bounded
        // (the lease returns the instance when it goes out of scope).
        MutexLock shim_lock(instance->exec_mutex());
        (void)instance->ReleaseRegion(outcome->output);
      }
    } else if (!result.ok()) {
      RR_LOG(Debug) << "node agent: transfer failed: " << result;
    }

    // Bookkeeping belongs to the owning shard's loop. Post after Stop is a
    // benign no-op (Shutdown reclaims connection state itself).
    shards[job.shard].reactor->Post(
        [this, si = job.shard, id = job.conn_id, mux = job.mux,
         staged = job.staged, fatal = conn_fatal] {
          OnJobDone(si, id, mux, staged, fatal);
        });
  }

  void OnJobDone(size_t si, uint64_t id, bool mux, size_t staged, bool fatal) {
    const auto it = shards[si].conns.find(id);
    if (it == shards[si].conns.end()) return;  // already torn down
    const std::shared_ptr<Conn> conn = it->second;
    conn->last_activity = Now();
    if (fatal) {
      Teardown(si, conn);
      return;
    }
    if (mux) {
      --conn->jobs_inflight;
      conn->committed_bytes -= staged;
      if (!FlushDeferredCredit(*conn)) Teardown(si, conn);
    } else {
      conn->legacy_job_running = false;
      --conn->legacy_inflight;
      PumpLegacy(*conn);
    }
  }
};

NodeAgent::NodeAgent(osal::TcpListener listener, Options options)
    : listener_(std::move(listener)), options_(options) {}

Result<std::unique_ptr<NodeAgent>> NodeAgent::Start(uint16_t port) {
  return Start(port, Options());
}

Result<std::unique_ptr<NodeAgent>> NodeAgent::Start(uint16_t port,
                                                    Options options) {
  RR_ASSIGN_OR_RETURN(osal::TcpListener listener, osal::TcpListener::Bind(port));
  auto agent = std::unique_ptr<NodeAgent>(
      new NodeAgent(std::move(listener), options));
  if (options.ingress == Options::Ingress::kReactor) {
    agent->reactor_plane_ = std::make_unique<ReactorPlane>(agent.get());
    const Status started = agent->reactor_plane_->Start();
    if (!started.ok()) {
      agent->Shutdown();
      return started;
    }
  } else {
    agent->accept_thread_ =
        std::thread([raw = agent.get()] { raw->AcceptLoop(); });
  }
  return agent;
}

NodeAgent::~NodeAgent() { Shutdown(); }

void NodeAgent::Shutdown() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listener_.fd(), SHUT_RDWR);
  if (reactor_plane_ != nullptr) {
    reactor_plane_->Shutdown();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::map<uint64_t, std::thread> workers;
  {
    MutexLock lock(mutex_);
    // Unblock workers parked in a receive on a still-open channel (senders
    // cached in a HopTable may outlive the agent).
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
    finished_.clear();
  }
  for (auto& [id, worker] : workers) {
    if (worker.joinable()) worker.join();
  }
}

Status NodeAgent::RegisterFunction(std::shared_ptr<ShimPool> pool,
                                   DeliveryCallback on_delivery) {
  if (pool == nullptr) return InvalidArgumentError("null pool");
  const std::string name = pool->name();
  MutexLock lock(mutex_);
  if (!functions_
           .emplace(name, Entry{std::move(pool), std::move(on_delivery)})
           .second) {
    return AlreadyExistsError("function already registered: " + name);
  }
  return Status::Ok();
}

Status NodeAgent::RegisterFunction(Shim* shim, DeliveryCallback on_delivery) {
  if (shim == nullptr) return InvalidArgumentError("null shim");
  RR_ASSIGN_OR_RETURN(std::shared_ptr<ShimPool> pool, ShimPool::Adopt(shim));
  return RegisterFunction(std::move(pool), std::move(on_delivery));
}

Status NodeAgent::UnregisterFunction(const std::string& name) {
  MutexLock lock(mutex_);
  if (functions_.erase(name) == 0) {
    return NotFoundError("function not registered: " + name);
  }
  return Status::Ok();
}

size_t NodeAgent::live_workers() const {
  MutexLock lock(mutex_);
  return workers_.size();
}

void NodeAgent::ReapFinished() {
  std::vector<std::thread> done;
  {
    MutexLock lock(mutex_);
    for (const uint64_t id : finished_) {
      const auto it = workers_.find(id);
      if (it == workers_.end()) continue;  // Shutdown already swiped the map
      done.push_back(std::move(it->second));
      workers_.erase(it);
    }
    finished_.clear();
  }
  // Join outside the lock: a worker announcing its own completion needs it.
  for (std::thread& worker : done) {
    if (worker.joinable()) worker.join();
  }
}

void NodeAgent::AcceptLoop() {
  while (!stopping_.load()) {
    // Reap between accepts: with periodic traffic the worker map tracks the
    // live connection count, not the all-time connection count.
    ReapFinished();
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      if (stopping_.load()) return;
      if (!IsTransientAcceptError(conn.status())) {
        RR_LOG(Warning) << "node agent: accept failed fatally: "
                        << conn.status();
        return;
      }
      // EMFILE and friends: back off a beat (finishing connections release
      // fds; reaping at the loop head releases their threads) and retry.
      AgentAcceptRetries().Inc();
      RR_LOG(Warning) << "node agent: transient accept error (retrying): "
                      << conn.status();
      PreciseSleep(std::chrono::milliseconds(10));
      continue;
    }
    MutexLock lock(mutex_);
    if (stopping_.load()) return;
    const uint64_t id = next_worker_id_++;
    workers_.emplace(
        id, std::thread([this, id, c = std::move(*conn)]() mutable {
          AgentLiveWorkers().Add(1);
          ServeConnection(std::move(c));
          AgentLiveWorkers().Sub(1);
          MutexLock finish_lock(mutex_);
          finished_.push_back(id);
        }));
  }
}

void NodeAgent::ServeConnection(osal::Connection conn) {
  const int fd = conn.fd();
  {
    MutexLock lock(mutex_);
    if (stopping_.load()) return;  // raced with Shutdown: drop, don't serve
    active_fds_.insert(fd);
  }
  active_connections_.fetch_add(1, std::memory_order_relaxed);
  AgentConnections().Add(1);
  // Untrack before the connection closes (returns below destroy it after the
  // call), so Shutdown never shuts down a recycled descriptor.
  const auto untrack = [this, fd] {
    {
      MutexLock lock(mutex_);
      active_fds_.erase(fd);
    }
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
    AgentConnections().Sub(1);
  };

  auto name = ReadPreamble(conn);
  if (!name.ok()) {
    RR_LOG(Warning) << "node agent: bad preamble: " << name.status();
    untrack();
    return;
  }

  Entry entry;
  bool found = false;
  {
    MutexLock lock(mutex_);
    const auto it = functions_.find(*name);
    if (it != functions_.end()) {
      entry = it->second;
      found = true;
    }
  }
  if (!found) {
    RR_LOG(Warning) << "node agent: no such function: " << *name;
    untrack();
    return;  // connection dropped: remote sees EOF/reset
  }

  auto receiver = NetworkChannelReceiver::FromConnection(std::move(conn));
  if (!receiver.ok()) {
    untrack();
    return;
  }
  receiver->set_transfer_deadline(options_.transfer_deadline);

  // One channel, many transfers: loop until the peer closes. The header is
  // awaited without holding an instance (a parked idle channel must not
  // starve the function's pool); each frame then leases its own instance
  // for the receive+invoke, so concurrent connections to one function
  // execute whole transfers in parallel across the pool — up to its
  // max_instances — instead of serializing on one VM.
  while (!stopping_.load()) {
    auto frame = receiver->ReceiveHeader();
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::kDataLoss &&
          frame.status().code() != StatusCode::kUnavailable) {
        RR_LOG(Debug) << "node agent: transfer ended: " << frame.status();
      }
      break;
    }
    auto lease = entry.pool->Lease();
    if (!lease.ok()) {
      // Pool exhausted: refuse the frame on a channel that stays alive —
      // drain the body, send the typed error ack. The sender's transfer
      // fails with kResourceExhausted; the connection (and every other
      // transfer queued behind it) survives the spike.
      const Status refusal = ResourceExhaustedError(
          "no instance available for " + *name + ": " +
          lease.status().message());
      // Count BEFORE the ack leaves: a sender that observed the typed error
      // must also observe the count (it may not if the peer died mid-refusal
      // — then the count records the attempt, which failed either way).
      transfers_refused_.fetch_add(1, std::memory_order_relaxed);
      AgentTransfersRefused().Inc();
      if (!receiver->RejectBody(*frame, refusal).ok()) {
        // Could not even drain: the channel is desynced, tear it down.
        RR_LOG(Warning) << "node agent: refusing frame failed for " << *name;
        break;
      }
      RR_LOG(Debug) << "node agent: refused frame for " << *name << ": "
                    << refusal;
      continue;
    }
    bool rejected_in_sync = false;
    bool delivered = false;
    Result<InvokeOutcome> outcome = [&]() -> Result<InvokeOutcome> {
      // The frame's trace context (decoded from the header extension, {0,0}
      // on legacy frames) is installed for the whole receive+invoke: the
      // remote-side spans join the SENDER's trace, which is what stitches a
      // cross-process chain into one trace. Tolerates absent/zero context —
      // spans then open their own trace as usual.
      obs::ScopedTraceContext frame_ctx(
          obs::SpanContext{frame->trace_id, frame->parent_span});
      // The exec mutex synchronizes the delivery + invoke against readers of
      // regions earlier invocations left resident in this instance.
      MutexLock shim_lock((*lease)->exec_mutex());
      RR_TRACE_SPAN(ingress_span, "agent", "ingress:" + *name);
      RR_ASSIGN_OR_RETURN(
          const MemoryRegion region,
          receiver->ReceiveBody(*frame, **lease, CopyMode::kShimStaging,
                                /*place=*/nullptr, &rejected_in_sync));
      if (ingress_span) ingress_span->End();
      delivered = true;
      // A failed invoke leaves the input region allocated; this instance
      // returns to the pool and lives on, so the region must not leak.
      RegionGuard guard(lease->get(), region);
      RR_TRACE_SPAN(invoke_span, "agent", "invoke:" + *name);
      auto invoked = (*lease)->InvokeOnRegion(region);
      if (invoke_span) invoke_span->End();
      if (invoked.ok()) guard.Dismiss();
      return invoked;
    }();
    if (!outcome.ok()) {
      RR_LOG(Debug) << "node agent: transfer failed: " << outcome.status();
      // The channel stayed synchronized in two cases: a receiver-side
      // rejection that drained the body and error-acked it, and an invoke
      // that failed after the payload landed (delivery already acked). Both
      // leave the wire healthy — keep serving this connection's other
      // transfers. Anything else desynced the channel: tear it down.
      if (rejected_in_sync || delivered) continue;
      break;
    }
    transfers_completed_.fetch_add(1, std::memory_order_relaxed);
    AgentTransfersCompleted().Inc();
    if (entry.on_delivery) {
      entry.on_delivery(*name, *outcome, frame->token, std::move(*lease));
    } else {
      // Nobody consumes the output: release it to keep the heap bounded
      // (the lease returns the instance when it goes out of scope).
      MutexLock shim_lock((*lease)->exec_mutex());
      (void)(*lease)->ReleaseRegion(outcome->output);
    }
  }
  untrack();
}

Result<NetworkChannelSender> ConnectToRemoteFunction(const std::string& host,
                                                     uint16_t agent_port,
                                                     const std::string& function) {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, osal::TcpConnect(host, agent_port));
  conn.SetNoDelay(true);
  RR_RETURN_IF_ERROR(SendPreamble(conn, function));
  return NetworkChannelSender::FromConnection(std::move(conn));
}

}  // namespace rr::core
