#include "core/node_agent.h"

#include <sys/socket.h>

#include "common/log.h"

namespace rr::core {
namespace {

// Routing preamble: [u16 LE name length][name bytes]. Kept fixed and tiny —
// routing metadata, never payload.
constexpr size_t kMaxFunctionName = 256;

Status SendPreamble(osal::Connection& conn, const std::string& function) {
  if (function.empty() || function.size() > kMaxFunctionName) {
    return InvalidArgumentError("function name length invalid");
  }
  uint8_t header[2];
  StoreLE<uint16_t>(header, static_cast<uint16_t>(function.size()));
  RR_RETURN_IF_ERROR(conn.Send(ByteSpan(header, 2)));
  return conn.Send(AsBytes(function));
}

Result<std::string> ReadPreamble(osal::Connection& conn) {
  uint8_t header[2];
  RR_RETURN_IF_ERROR(conn.Receive(MutableByteSpan(header, 2)));
  const uint16_t length = LoadLE<uint16_t>(header);
  if (length == 0 || length > kMaxFunctionName) {
    return InvalidArgumentError("preamble name length invalid");
  }
  Bytes name(length);
  RR_RETURN_IF_ERROR(conn.Receive(name));
  return ToString(name);
}

}  // namespace

Result<std::unique_ptr<NodeAgent>> NodeAgent::Start(uint16_t port) {
  RR_ASSIGN_OR_RETURN(osal::TcpListener listener, osal::TcpListener::Bind(port));
  auto agent = std::unique_ptr<NodeAgent>(new NodeAgent(std::move(listener)));
  agent->accept_thread_ = std::thread([raw = agent.get()] { raw->AcceptLoop(); });
  return agent;
}

NodeAgent::~NodeAgent() { Shutdown(); }

void NodeAgent::Shutdown() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listener_.fd(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Unblock workers parked in a receive on a still-open channel (senders
    // cached in a HopTable may outlive the agent).
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

Status NodeAgent::RegisterFunction(Shim* shim, DeliveryCallback on_delivery) {
  if (shim == nullptr) return InvalidArgumentError("null shim");
  std::lock_guard<std::mutex> lock(mutex_);
  if (!functions_.emplace(shim->name(), Entry{shim, std::move(on_delivery)})
           .second) {
    return AlreadyExistsError("function already registered: " + shim->name());
  }
  return Status::Ok();
}

Status NodeAgent::UnregisterFunction(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (functions_.erase(name) == 0) {
    return NotFoundError("function not registered: " + name);
  }
  return Status::Ok();
}

void NodeAgent::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = listener_.Accept();
    if (!conn.ok()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    workers_.emplace_back(
        [this, c = std::move(*conn)]() mutable { ServeConnection(std::move(c)); });
  }
}

void NodeAgent::ServeConnection(osal::Connection conn) {
  const int fd = conn.fd();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load()) return;  // raced with Shutdown: drop, don't serve
    active_fds_.insert(fd);
  }
  // Untrack before the connection closes (returns below destroy it after the
  // call), so Shutdown never shuts down a recycled descriptor.
  const auto untrack = [this, fd] {
    std::lock_guard<std::mutex> lock(mutex_);
    active_fds_.erase(fd);
  };

  auto name = ReadPreamble(conn);
  if (!name.ok()) {
    RR_LOG(Warning) << "node agent: bad preamble: " << name.status();
    untrack();
    return;
  }

  Entry entry;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = functions_.find(*name);
    if (it != functions_.end()) {
      entry = it->second;
      found = true;
    }
  }
  if (!found) {
    RR_LOG(Warning) << "node agent: no such function: " << *name;
    untrack();
    return;  // connection dropped: remote sees EOF/reset
  }

  auto receiver = NetworkChannelReceiver::FromConnection(std::move(conn));
  if (!receiver.ok()) {
    untrack();
    return;
  }

  // One channel, many transfers: loop until the peer closes. The header is
  // awaited without the shim lock (a parked idle channel must not block
  // other channels' deliveries into the same function); body delivery and
  // invoke serialize on the shim, so concurrent connections to one function
  // interleave whole transfers, never partial ones.
  while (!stopping_.load()) {
    auto frame = receiver->ReceiveHeader();
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::kDataLoss &&
          frame.status().code() != StatusCode::kUnavailable) {
        RR_LOG(Debug) << "node agent: transfer ended: " << frame.status();
      }
      break;
    }
    Result<InvokeOutcome> outcome = [&]() -> Result<InvokeOutcome> {
      std::lock_guard<std::mutex> shim_lock(entry.shim->exec_mutex());
      RR_ASSIGN_OR_RETURN(const MemoryRegion region,
                          receiver->ReceiveBody(*frame, *entry.shim));
      return entry.shim->InvokeOnRegion(region);
    }();
    if (!outcome.ok()) {
      RR_LOG(Debug) << "node agent: transfer ended: " << outcome.status();
      break;
    }
    transfers_completed_.fetch_add(1, std::memory_order_relaxed);
    if (entry.on_delivery) {
      entry.on_delivery(*name, *outcome, frame->token);
    } else {
      // Nobody consumes the output: release it to keep the heap bounded.
      std::lock_guard<std::mutex> shim_lock(entry.shim->exec_mutex());
      (void)entry.shim->ReleaseRegion(outcome->output);
    }
  }
  untrack();
}

Result<NetworkChannelSender> ConnectToRemoteFunction(const std::string& host,
                                                     uint16_t agent_port,
                                                     const std::string& function) {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, osal::TcpConnect(host, agent_port));
  conn.SetNoDelay(true);
  RR_RETURN_IF_ERROR(SendPreamble(conn, function));
  return NetworkChannelSender::FromConnection(std::move(conn));
}

}  // namespace rr::core
