#include "core/node_agent.h"

#include <sys/socket.h>

#include "common/log.h"
#include "core/region_guard.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rr::core {
namespace {

obs::Counter& AgentAcceptRetries() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_agent_accept_retries_total",
      "Transient accept errors the agent backed off and retried");
  return *counter;
}

obs::Gauge& AgentLiveWorkers() {
  static obs::Gauge* gauge = obs::Registry::Get().gauge(
      "rr_agent_live_workers", "Connection worker threads currently alive");
  return *gauge;
}

obs::Counter& AgentTransfersRefused() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_agent_transfers_refused_total",
      "Frames refused with a typed error ack (pool exhausted)");
  return *counter;
}

obs::Counter& AgentTransfersCompleted() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_agent_transfers_completed_total",
      "Frames delivered and invoked to completion");
  return *counter;
}

// Eager registration: agent series appear in scrapes at zero, before any
// connection or refusal has happened.
const bool g_agent_metrics_registered = [] {
  AgentAcceptRetries();
  AgentLiveWorkers();
  AgentTransfersRefused();
  AgentTransfersCompleted();
  return true;
}();

// Routing preamble: [u16 LE name length][name bytes]. Kept fixed and tiny —
// routing metadata, never payload.
constexpr size_t kMaxFunctionName = 256;

Status SendPreamble(osal::Connection& conn, const std::string& function) {
  if (function.empty() || function.size() > kMaxFunctionName) {
    return InvalidArgumentError("function name length invalid");
  }
  uint8_t header[2];
  StoreLE<uint16_t>(header, static_cast<uint16_t>(function.size()));
  RR_RETURN_IF_ERROR(conn.Send(ByteSpan(header, 2)));
  return conn.Send(AsBytes(function));
}

Result<std::string> ReadPreamble(osal::Connection& conn) {
  uint8_t header[2];
  RR_RETURN_IF_ERROR(conn.Receive(MutableByteSpan(header, 2)));
  const uint16_t length = LoadLE<uint16_t>(header);
  if (length == 0 || length > kMaxFunctionName) {
    return InvalidArgumentError("preamble name length invalid");
  }
  Bytes name(length);
  RR_RETURN_IF_ERROR(conn.Receive(name));
  return ToString(name);
}

}  // namespace

bool IsTransientAcceptError(const Status& status) {
  // kResourceExhausted: EMFILE/ENFILE/ENOMEM — the node is out of fds or
  // memory *right now*; connections already being served will finish and
  // free them. kUnavailable: ECONNABORTED/EPROTO/EAGAIN — the failure
  // belongs to one aborted peer, not the listener.
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kUnavailable;
}

Result<std::unique_ptr<NodeAgent>> NodeAgent::Start(uint16_t port) {
  return Start(port, Options());
}

Result<std::unique_ptr<NodeAgent>> NodeAgent::Start(uint16_t port,
                                                    Options options) {
  RR_ASSIGN_OR_RETURN(osal::TcpListener listener, osal::TcpListener::Bind(port));
  auto agent = std::unique_ptr<NodeAgent>(
      new NodeAgent(std::move(listener), options));
  agent->accept_thread_ = std::thread([raw = agent.get()] { raw->AcceptLoop(); });
  return agent;
}

NodeAgent::~NodeAgent() { Shutdown(); }

void NodeAgent::Shutdown() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listener_.fd(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::map<uint64_t, std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Unblock workers parked in a receive on a still-open channel (senders
    // cached in a HopTable may outlive the agent).
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
    finished_.clear();
  }
  for (auto& [id, worker] : workers) {
    if (worker.joinable()) worker.join();
  }
}

Status NodeAgent::RegisterFunction(std::shared_ptr<ShimPool> pool,
                                   DeliveryCallback on_delivery) {
  if (pool == nullptr) return InvalidArgumentError("null pool");
  const std::string name = pool->name();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!functions_
           .emplace(name, Entry{std::move(pool), std::move(on_delivery)})
           .second) {
    return AlreadyExistsError("function already registered: " + name);
  }
  return Status::Ok();
}

Status NodeAgent::RegisterFunction(Shim* shim, DeliveryCallback on_delivery) {
  if (shim == nullptr) return InvalidArgumentError("null shim");
  RR_ASSIGN_OR_RETURN(std::shared_ptr<ShimPool> pool, ShimPool::Adopt(shim));
  return RegisterFunction(std::move(pool), std::move(on_delivery));
}

Status NodeAgent::UnregisterFunction(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (functions_.erase(name) == 0) {
    return NotFoundError("function not registered: " + name);
  }
  return Status::Ok();
}

size_t NodeAgent::live_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void NodeAgent::ReapFinished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const uint64_t id : finished_) {
      const auto it = workers_.find(id);
      if (it == workers_.end()) continue;  // Shutdown already swiped the map
      done.push_back(std::move(it->second));
      workers_.erase(it);
    }
    finished_.clear();
  }
  // Join outside the lock: a worker announcing its own completion needs it.
  for (std::thread& worker : done) {
    if (worker.joinable()) worker.join();
  }
}

void NodeAgent::AcceptLoop() {
  while (!stopping_.load()) {
    // Reap between accepts: with periodic traffic the worker map tracks the
    // live connection count, not the all-time connection count.
    ReapFinished();
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      if (stopping_.load()) return;
      if (!IsTransientAcceptError(conn.status())) {
        RR_LOG(Warning) << "node agent: accept failed fatally: "
                        << conn.status();
        return;
      }
      // EMFILE and friends: back off a beat (finishing connections release
      // fds; reaping at the loop head releases their threads) and retry.
      AgentAcceptRetries().Inc();
      RR_LOG(Warning) << "node agent: transient accept error (retrying): "
                      << conn.status();
      PreciseSleep(std::chrono::milliseconds(10));
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load()) return;
    const uint64_t id = next_worker_id_++;
    workers_.emplace(
        id, std::thread([this, id, c = std::move(*conn)]() mutable {
          AgentLiveWorkers().Add(1);
          ServeConnection(std::move(c));
          AgentLiveWorkers().Sub(1);
          std::lock_guard<std::mutex> finish_lock(mutex_);
          finished_.push_back(id);
        }));
  }
}

void NodeAgent::ServeConnection(osal::Connection conn) {
  const int fd = conn.fd();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load()) return;  // raced with Shutdown: drop, don't serve
    active_fds_.insert(fd);
  }
  // Untrack before the connection closes (returns below destroy it after the
  // call), so Shutdown never shuts down a recycled descriptor.
  const auto untrack = [this, fd] {
    std::lock_guard<std::mutex> lock(mutex_);
    active_fds_.erase(fd);
  };

  auto name = ReadPreamble(conn);
  if (!name.ok()) {
    RR_LOG(Warning) << "node agent: bad preamble: " << name.status();
    untrack();
    return;
  }

  Entry entry;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = functions_.find(*name);
    if (it != functions_.end()) {
      entry = it->second;
      found = true;
    }
  }
  if (!found) {
    RR_LOG(Warning) << "node agent: no such function: " << *name;
    untrack();
    return;  // connection dropped: remote sees EOF/reset
  }

  auto receiver = NetworkChannelReceiver::FromConnection(std::move(conn));
  if (!receiver.ok()) {
    untrack();
    return;
  }
  receiver->set_transfer_deadline(options_.transfer_deadline);

  // One channel, many transfers: loop until the peer closes. The header is
  // awaited without holding an instance (a parked idle channel must not
  // starve the function's pool); each frame then leases its own instance
  // for the receive+invoke, so concurrent connections to one function
  // execute whole transfers in parallel across the pool — up to its
  // max_instances — instead of serializing on one VM.
  while (!stopping_.load()) {
    auto frame = receiver->ReceiveHeader();
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::kDataLoss &&
          frame.status().code() != StatusCode::kUnavailable) {
        RR_LOG(Debug) << "node agent: transfer ended: " << frame.status();
      }
      break;
    }
    auto lease = entry.pool->Lease();
    if (!lease.ok()) {
      // Pool exhausted: refuse the frame on a channel that stays alive —
      // drain the body, send the typed error ack. The sender's transfer
      // fails with kResourceExhausted; the connection (and every other
      // transfer queued behind it) survives the spike.
      const Status refusal = ResourceExhaustedError(
          "no instance available for " + *name + ": " +
          lease.status().message());
      // Count BEFORE the ack leaves: a sender that observed the typed error
      // must also observe the count (it may not if the peer died mid-refusal
      // — then the count records the attempt, which failed either way).
      transfers_refused_.fetch_add(1, std::memory_order_relaxed);
      AgentTransfersRefused().Inc();
      if (!receiver->RejectBody(*frame, refusal).ok()) {
        // Could not even drain: the channel is desynced, tear it down.
        RR_LOG(Warning) << "node agent: refusing frame failed for " << *name;
        break;
      }
      RR_LOG(Debug) << "node agent: refused frame for " << *name << ": "
                    << refusal;
      continue;
    }
    bool rejected_in_sync = false;
    bool delivered = false;
    Result<InvokeOutcome> outcome = [&]() -> Result<InvokeOutcome> {
      // The frame's trace context (decoded from the header extension, {0,0}
      // on legacy frames) is installed for the whole receive+invoke: the
      // remote-side spans join the SENDER's trace, which is what stitches a
      // cross-process chain into one trace. Tolerates absent/zero context —
      // spans then open their own trace as usual.
      obs::ScopedTraceContext frame_ctx(
          obs::SpanContext{frame->trace_id, frame->parent_span});
      // The exec mutex synchronizes the delivery + invoke against readers of
      // regions earlier invocations left resident in this instance.
      std::lock_guard<std::mutex> shim_lock((*lease)->exec_mutex());
      RR_TRACE_SPAN(ingress_span, "agent", "ingress:" + *name);
      RR_ASSIGN_OR_RETURN(
          const MemoryRegion region,
          receiver->ReceiveBody(*frame, **lease, CopyMode::kShimStaging,
                                /*place=*/nullptr, &rejected_in_sync));
      if (ingress_span) ingress_span->End();
      delivered = true;
      // A failed invoke leaves the input region allocated; this instance
      // returns to the pool and lives on, so the region must not leak.
      RegionGuard guard(lease->get(), region);
      RR_TRACE_SPAN(invoke_span, "agent", "invoke:" + *name);
      auto invoked = (*lease)->InvokeOnRegion(region);
      if (invoke_span) invoke_span->End();
      if (invoked.ok()) guard.Dismiss();
      return invoked;
    }();
    if (!outcome.ok()) {
      RR_LOG(Debug) << "node agent: transfer failed: " << outcome.status();
      // The channel stayed synchronized in two cases: a receiver-side
      // rejection that drained the body and error-acked it, and an invoke
      // that failed after the payload landed (delivery already acked). Both
      // leave the wire healthy — keep serving this connection's other
      // transfers. Anything else desynced the channel: tear it down.
      if (rejected_in_sync || delivered) continue;
      break;
    }
    transfers_completed_.fetch_add(1, std::memory_order_relaxed);
    AgentTransfersCompleted().Inc();
    if (entry.on_delivery) {
      entry.on_delivery(*name, *outcome, frame->token, std::move(*lease));
    } else {
      // Nobody consumes the output: release it to keep the heap bounded
      // (the lease returns the instance when it goes out of scope).
      std::lock_guard<std::mutex> shim_lock((*lease)->exec_mutex());
      (void)(*lease)->ReleaseRegion(outcome->output);
    }
  }
  untrack();
}

Result<NetworkChannelSender> ConnectToRemoteFunction(const std::string& host,
                                                     uint16_t agent_port,
                                                     const std::string& function) {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, osal::TcpConnect(host, agent_port));
  conn.SetNoDelay(true);
  RR_RETURN_IF_ERROR(SendPreamble(conn, function));
  return NetworkChannelSender::FromConnection(std::move(conn));
}

}  // namespace rr::core
