#include "core/node_agent.h"

#include <sys/socket.h>

#include "common/log.h"

namespace rr::core {
namespace {

// Routing preamble: [u16 LE name length][name bytes]. Kept fixed and tiny —
// routing metadata, never payload.
constexpr size_t kMaxFunctionName = 256;

Status SendPreamble(osal::Connection& conn, const std::string& function) {
  if (function.empty() || function.size() > kMaxFunctionName) {
    return InvalidArgumentError("function name length invalid");
  }
  uint8_t header[2];
  StoreLE<uint16_t>(header, static_cast<uint16_t>(function.size()));
  RR_RETURN_IF_ERROR(conn.Send(ByteSpan(header, 2)));
  return conn.Send(AsBytes(function));
}

Result<std::string> ReadPreamble(osal::Connection& conn) {
  uint8_t header[2];
  RR_RETURN_IF_ERROR(conn.Receive(MutableByteSpan(header, 2)));
  const uint16_t length = LoadLE<uint16_t>(header);
  if (length == 0 || length > kMaxFunctionName) {
    return InvalidArgumentError("preamble name length invalid");
  }
  Bytes name(length);
  RR_RETURN_IF_ERROR(conn.Receive(name));
  return ToString(name);
}

}  // namespace

Result<std::unique_ptr<NodeAgent>> NodeAgent::Start(uint16_t port) {
  RR_ASSIGN_OR_RETURN(osal::TcpListener listener, osal::TcpListener::Bind(port));
  auto agent = std::unique_ptr<NodeAgent>(new NodeAgent(std::move(listener)));
  agent->accept_thread_ = std::thread([raw = agent.get()] { raw->AcceptLoop(); });
  return agent;
}

NodeAgent::~NodeAgent() { Shutdown(); }

void NodeAgent::Shutdown() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listener_.fd(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Unblock workers parked in a receive on a still-open channel (senders
    // cached in a HopTable may outlive the agent).
    for (const int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

Status NodeAgent::RegisterFunction(std::shared_ptr<ShimPool> pool,
                                   DeliveryCallback on_delivery) {
  if (pool == nullptr) return InvalidArgumentError("null pool");
  const std::string name = pool->name();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!functions_
           .emplace(name, Entry{std::move(pool), std::move(on_delivery)})
           .second) {
    return AlreadyExistsError("function already registered: " + name);
  }
  return Status::Ok();
}

Status NodeAgent::RegisterFunction(Shim* shim, DeliveryCallback on_delivery) {
  if (shim == nullptr) return InvalidArgumentError("null shim");
  RR_ASSIGN_OR_RETURN(std::shared_ptr<ShimPool> pool, ShimPool::Adopt(shim));
  return RegisterFunction(std::move(pool), std::move(on_delivery));
}

Status NodeAgent::UnregisterFunction(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (functions_.erase(name) == 0) {
    return NotFoundError("function not registered: " + name);
  }
  return Status::Ok();
}

void NodeAgent::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = listener_.Accept();
    if (!conn.ok()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    workers_.emplace_back(
        [this, c = std::move(*conn)]() mutable { ServeConnection(std::move(c)); });
  }
}

void NodeAgent::ServeConnection(osal::Connection conn) {
  const int fd = conn.fd();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load()) return;  // raced with Shutdown: drop, don't serve
    active_fds_.insert(fd);
  }
  // Untrack before the connection closes (returns below destroy it after the
  // call), so Shutdown never shuts down a recycled descriptor.
  const auto untrack = [this, fd] {
    std::lock_guard<std::mutex> lock(mutex_);
    active_fds_.erase(fd);
  };

  auto name = ReadPreamble(conn);
  if (!name.ok()) {
    RR_LOG(Warning) << "node agent: bad preamble: " << name.status();
    untrack();
    return;
  }

  Entry entry;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = functions_.find(*name);
    if (it != functions_.end()) {
      entry = it->second;
      found = true;
    }
  }
  if (!found) {
    RR_LOG(Warning) << "node agent: no such function: " << *name;
    untrack();
    return;  // connection dropped: remote sees EOF/reset
  }

  auto receiver = NetworkChannelReceiver::FromConnection(std::move(conn));
  if (!receiver.ok()) {
    untrack();
    return;
  }

  // One channel, many transfers: loop until the peer closes. The header is
  // awaited without holding an instance (a parked idle channel must not
  // starve the function's pool); each frame then leases its own instance
  // for the receive+invoke, so concurrent connections to one function
  // execute whole transfers in parallel across the pool — up to its
  // max_instances — instead of serializing on one VM.
  while (!stopping_.load()) {
    auto frame = receiver->ReceiveHeader();
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::kDataLoss &&
          frame.status().code() != StatusCode::kUnavailable) {
        RR_LOG(Debug) << "node agent: transfer ended: " << frame.status();
      }
      break;
    }
    auto lease = entry.pool->Lease();
    if (!lease.ok()) {
      // Without an instance the body cannot be drained, so the channel
      // desyncs: tear it down and let the sender fail cleanly.
      RR_LOG(Warning) << "node agent: no instance for " << *name << ": "
                      << lease.status();
      break;
    }
    Result<InvokeOutcome> outcome = [&]() -> Result<InvokeOutcome> {
      // The exec mutex synchronizes the delivery + invoke against readers of
      // regions earlier invocations left resident in this instance.
      std::lock_guard<std::mutex> shim_lock((*lease)->exec_mutex());
      RR_ASSIGN_OR_RETURN(const MemoryRegion region,
                          receiver->ReceiveBody(*frame, **lease));
      auto invoked = (*lease)->InvokeOnRegion(region);
      if (!invoked.ok()) {
        // A failed invoke leaves the input region allocated; this instance
        // returns to the pool and lives on, so the region must not leak.
        (void)(*lease)->ReleaseRegion(region);
      }
      return invoked;
    }();
    if (!outcome.ok()) {
      RR_LOG(Debug) << "node agent: transfer ended: " << outcome.status();
      break;
    }
    transfers_completed_.fetch_add(1, std::memory_order_relaxed);
    if (entry.on_delivery) {
      entry.on_delivery(*name, *outcome, frame->token, std::move(*lease));
    } else {
      // Nobody consumes the output: release it to keep the heap bounded
      // (the lease returns the instance when it goes out of scope).
      std::lock_guard<std::mutex> shim_lock((*lease)->exec_mutex());
      (void)(*lease)->ReleaseRegion(outcome->output);
    }
  }
  untrack();
}

Result<NetworkChannelSender> ConnectToRemoteFunction(const std::string& host,
                                                     uint16_t agent_port,
                                                     const std::string& function) {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, osal::TcpConnect(host, agent_port));
  conn.SetNoDelay(true);
  RR_RETURN_IF_ERROR(SendPreamble(conn, function));
  return NetworkChannelSender::FromConnection(std::move(conn));
}

}  // namespace rr::core
