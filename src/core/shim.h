// The Roadrunner shim: a sidecar that owns one function's Wasm VM lifecycle
// and all of its ingress/egress (§3.2.2: "The shim runs as a sidecar
// alongside each function and manages the Wasm VM lifecycle, including
// memory configuration, binary loading, and runtime interaction. It handles
// all function ingress and egress").
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include "common/mutex.h"
#include "common/thread_annotations.h"

#include "common/buffer.h"
#include "common/clock.h"
#include "core/data_access.h"
#include "runtime/function.h"
#include "runtime/wasm_sandbox.h"

namespace rr::core {

// Chooses where a delivered payload lands in a target's linear memory: given
// the payload length, returns a destination region covered by an existing
// registration — e.g. one slice of a fan-in gather region. Receivers fall
// back to a fresh PrepareInput allocation when no placer is given.
using RegionPlacer = std::function<Result<MemoryRegion>(uint32_t length)>;

// Result of delivering data into a function: where its output lives.
struct InvokeOutcome {
  MemoryRegion output;
};

// How a channel moves payload bytes across the VM boundary.
//
// kShimStaging is the paper's implementation: the shim copies data out of /
// into linear memory through the Wasm runtime's memory API ("data must still
// be copied in and out of the Wasm VM's linear memory due to Wasm's
// isolation model", §7) — this copy is the measured "Wasm VM I/O".
//
// kDirectGuest is this library's extension: the channel references the
// bounds-checked linear-memory pages directly (splice maps them into the
// kernel), eliminating the staging copy. Benchmarked as an ablation.
enum class CopyMode { kShimStaging, kDirectGuest };

// Wall-clock attribution of one channel operation, matching the latency
// components of Fig. 6a.
struct TransferTiming {
  Nanos wasm_io{0};   // guest<->host staging copies
  Nanos transfer{0};  // kernel/socket data movement

  TransferTiming& operator+=(const TransferTiming& other) {
    wasm_io += other.wasm_io;
    transfer += other.transfer;
    return *this;
  }
};

class Shim {
 public:
  // Creates a standalone shim: dedicated Wasm VM with one module (kernel /
  // network modes — Fig. 4b: "each function has its own dedicated shim").
  static Result<std::unique_ptr<Shim>> Create(
      runtime::FunctionSpec spec, ByteSpan wasm_binary,
      runtime::SandboxOptions options = {});

  // Creates a shim over a module co-located in an existing VM (user-space
  // mode — Fig. 4a: one VM, multiple modules, one managing shim process).
  static Result<std::unique_ptr<Shim>> CreateInVm(
      runtime::WasmVm& vm, runtime::FunctionSpec spec, ByteSpan wasm_binary,
      runtime::SandboxOptions options = {});

  const runtime::FunctionSpec& spec() const { return sandbox_->spec(); }
  const std::string& name() const { return sandbox_->name(); }

  // Installs the function's logic (binary loading happened at Create).
  Status Deploy(runtime::NativeHandler handler) {
    return sandbox_->Deploy(std::move(handler));
  }

  // --- ingress --------------------------------------------------------------
  // Copies `input` into freshly allocated guest memory, invokes the function,
  // and registers its output region. One guest-boundary copy in, zero out.
  // The BufferView overload gather-writes a segmented payload (shared chunks
  // of the zero-copy plane) without assembling a contiguous host copy first.
  Result<InvokeOutcome> DeliverAndInvoke(ByteSpan input);
  Result<InvokeOutcome> DeliverAndInvoke(const rr::BufferView& input);

  // Gather-writes `data` into `region` (lengths must match): the guest-side
  // half of a zero-copy delivery, one write_memory_host per segment.
  Status WriteInput(const MemoryRegion& region, const rr::BufferView& data);

  // Two-phase ingress for channels that want to write the payload directly
  // into guest memory (kernel/network receive paths): allocate, let the
  // caller fill the returned span, then InvokeOnRegion.
  Result<MemoryRegion> PrepareInput(uint32_t length);
  Result<MutableByteSpan> InputSpan(const MemoryRegion& region);
  Result<InvokeOutcome> InvokeOnRegion(const MemoryRegion& region);

  // Releases a function's input region after it has been consumed.
  Status ReleaseRegion(const MemoryRegion& region) {
    return data_.deallocate_memory(region.address);
  }

  // --- egress ---------------------------------------------------------------
  // Zero-copy view of a function's registered output (read_memory_host).
  Result<ByteSpan> OutputView(const MemoryRegion& region) {
    return data_.read_memory_host(region.address, region.length);
  }

  DataAccess& data() { return data_; }
  runtime::WasmSandbox& sandbox() { return *sandbox_; }

  // The memory-plane guard of ONE pool instance. Historically this was a
  // function's global serialization point: the function owned a single VM,
  // so every invocation of every concurrent run queued here. With instance
  // pools (core/shim_pool.h) a shim is one of N leased instances — routing
  // makes the mutex uncontended for invocation work — and the mutex's
  // remaining job is the memory plane: a payload whose guest region still
  // lives in this instance synchronizes its reads/release against whatever
  // invocation the pool admitted next. Sites that need both ends of a hop
  // take the two mutexes with rr::MutexPairLock (never one-then-the-other),
  // so lock order cannot deadlock.
  Mutex& exec_mutex() { return exec_mutex_; }

  // Atomic rather than mutex-guarded: pool aggregation and tests read it
  // outside any instance lock.
  uint64_t invocations() const {
    return invocations_.load(std::memory_order_relaxed);
  }

 private:
  Shim(std::unique_ptr<runtime::WasmSandbox> owned, runtime::WasmSandbox* module)
      : owned_sandbox_(std::move(owned)),
        sandbox_(module),
        data_(sandbox_) {}

  std::unique_ptr<runtime::WasmSandbox> owned_sandbox_;  // null in shared-VM mode
  runtime::WasmSandbox* sandbox_;
  DataAccess data_;
  Mutex exec_mutex_;
  std::atomic<uint64_t> invocations_{0};
};

}  // namespace rr::core
