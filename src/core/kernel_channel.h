// Kernel-space data transfer (§4.2, Fig. 4b): co-located functions in
// separate sandboxes exchange data through a UNIX domain socket between
// their shims — kernel-buffered, serialization-free frames, no network.
#pragma once

#include <string>

#include "core/shim.h"
#include "osal/socket.h"
#include "serde/framing.h"

namespace rr::core {

// Sender half, held by the source function's shim.
class KernelChannelSender {
 public:
  static Result<KernelChannelSender> Connect(const std::string& socket_path);
  static KernelChannelSender FromConnection(osal::Connection conn) {
    return KernelChannelSender(std::move(conn));
  }

  // Sends the source function's output region as one frame (steps 1-3 of
  // Fig. 4b). kShimStaging reads the region into a shim buffer first (the
  // paper's read_output path); kDirectGuest writes straight from the
  // linear-memory view.
  Status Send(Shim& source, const MemoryRegion& region,
              CopyMode mode = CopyMode::kShimStaging);

  // Raw-bytes variant used when the payload is already host-resident. The
  // BufferView overload performs one vectored write over the payload's
  // shared chunks — no staging copy, no assembly.
  Status SendBytes(ByteSpan data);
  Status SendBytes(const rr::BufferView& payload);

  // Arms SO_RCVTIMEO/SO_SNDTIMEO on the socket: a transfer whose peer makes
  // no progress for `timeout` fails with kDeadlineExceeded instead of
  // wedging the worker. Non-positive disarms.
  Status SetWireDeadline(Nanos timeout) { return conn_.SetIoTimeouts(timeout); }

  uint64_t bytes_sent() const { return bytes_sent_; }
  const TransferTiming& last_timing() const { return timing_; }

 private:
  explicit KernelChannelSender(osal::Connection conn) : conn_(std::move(conn)) {}

  osal::Connection conn_;
  uint64_t bytes_sent_ = 0;
  TransferTiming timing_;
};

// Receiver half, held by the target function's shim.
class KernelChannelReceiver {
 public:
  static KernelChannelReceiver FromConnection(osal::Connection conn) {
    return KernelChannelReceiver(std::move(conn));
  }

  // Steps 4-6 of Fig. 4b: read the frame length, allocate_memory in the
  // target function, and deliver the payload into its linear memory.
  // kShimStaging receives into a shim buffer then write_memory_host copies
  // it in; kDirectGuest reads from the kernel straight into the guest pages.
  // A non-null `place` overrides the allocation: the payload lands in the
  // region it returns (a slice of a fan-in gather region).
  Result<MemoryRegion> ReceiveInto(Shim& target,
                                   CopyMode mode = CopyMode::kShimStaging,
                                   const RegionPlacer* place = nullptr);

  // Receive + run the target function.
  Result<InvokeOutcome> ReceiveAndInvoke(Shim& target,
                                         CopyMode mode = CopyMode::kShimStaging);

  // As on the sender: bounds a stalled peer with kDeadlineExceeded.
  Status SetWireDeadline(Nanos timeout) { return conn_.SetIoTimeouts(timeout); }

  uint64_t bytes_received() const { return bytes_received_; }
  const TransferTiming& last_timing() const { return timing_; }

 private:
  explicit KernelChannelReceiver(osal::Connection conn) : conn_(std::move(conn)) {}

  osal::Connection conn_;
  uint64_t bytes_received_ = 0;
  TransferTiming timing_;
};

// Listener the target shim binds; Accept yields a receiver.
class KernelChannelListener {
 public:
  static Result<KernelChannelListener> Bind(const std::string& socket_path);

  Result<KernelChannelReceiver> Accept();

  const std::string& path() const { return listener_.path(); }

 private:
  explicit KernelChannelListener(osal::UnixListener listener)
      : listener_(std::move(listener)) {}

  osal::UnixListener listener_;
};

// In-process pair for tests and single-process benchmarks (the two shims
// still talk through a real AF_UNIX kernel buffer).
Result<std::pair<KernelChannelSender, KernelChannelReceiver>>
MakeKernelChannelPair();

}  // namespace rr::core
