// Ephemeral function state management (§9 future work: "we aim to introduce
// function state management ... allowing Roadrunner to efficiently handle
// stateless and stateful serverless functions").
//
// A StateStore is a per-workflow, host-resident key/value arena mediated by
// the shim, so functions keep short-term state across invocations without a
// remote KVS round-trip:
//   * Put reads the value straight from the function's registered output
//     region (one guest->host copy, no serialization);
//   * Get materializes the value into freshly allocated guest memory of the
//     reading function (one host->guest copy).
// Access control mirrors the channel rules: only shims of the store's
// workflow and tenant may touch it.
#pragma once

#include <map>
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include <optional>
#include <string>

#include "core/shim.h"

namespace rr::core {

// Store limits; Put fails closed beyond the capacity.
struct StateStoreOptions {
  uint64_t capacity_bytes = 256ull * 1024 * 1024;
};

class StateStore {
 public:
  using Options = StateStoreOptions;

  StateStore(std::string workflow, std::string tenant = "default",
             Options options = Options())
      : workflow_(std::move(workflow)),
        tenant_(std::move(tenant)),
        options_(options) {}

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  // Stores the contents of `region` (must be registered with the owner's
  // shim) under `key`. Overwrites an existing value.
  Status Put(Shim& owner, const std::string& key, const MemoryRegion& region);

  // Host-side variant for platform components.
  Status PutBytes(const std::string& key, ByteSpan value);

  // Delivers the value into `reader`'s guest memory; the returned region is
  // registered with the reader's shim and owned by its allocator.
  Result<MemoryRegion> Get(Shim& reader, const std::string& key);

  // Host-side read (copy).
  Result<Bytes> GetBytes(const std::string& key) const;

  Status Delete(const std::string& key);

  bool Contains(const std::string& key) const;
  size_t entry_count() const;
  uint64_t bytes_stored() const;

 private:
  Status CheckAccess(const Shim& shim) const;

  std::string workflow_;
  std::string tenant_;
  Options options_;
  mutable Mutex mutex_;
  std::map<std::string, Bytes> entries_ RR_GUARDED_BY(mutex_);
  uint64_t bytes_stored_ RR_GUARDED_BY(mutex_) = 0;
};

}  // namespace rr::core
