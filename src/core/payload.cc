#include "core/payload.h"

namespace rr::core {

Payload::State::~State() {
  if (shim != nullptr) {
    MutexLock shim_lock(shim->exec_mutex());
    (void)shim->ReleaseRegion(region);
  }
}

Payload::Payload(rr::Buffer buffer) : state_(std::make_shared<State>()) {
  state_->buffer = std::move(buffer);
  state_->materialized = true;
  state_->size = state_->buffer.size();
}

Payload Payload::FromGuest(Shim* instance, MemoryRegion region) {
  Payload payload;
  payload.state_ = std::make_shared<State>();
  payload.state_->shim = instance;
  payload.state_->region = region;
  payload.state_->size = region.length;
  return payload;
}

size_t Payload::size() const { return state_ == nullptr ? 0 : state_->size; }

bool Payload::guest_resident() const {
  if (state_ == nullptr) return false;
  MutexLock lock(state_->mutex);
  return state_->shim != nullptr;
}

Shim* Payload::guest_shim() const {
  return state_ == nullptr ? nullptr : state_->shim;
}

const MemoryRegion* Payload::guest_region() const {
  if (state_ == nullptr || state_->shim == nullptr) return nullptr;
  return &state_->region;
}

Result<rr::Buffer> Payload::Materialize(Nanos* wasm_io) const {
  if (state_ == nullptr) return rr::Buffer{};
  MutexLock lock(state_->mutex);
  if (state_->materialized) return state_->buffer;

  Shim* const shim = state_->shim;
  MutableByteSpan fill;
  rr::Buffer buffer = rr::Buffer::ForOverwrite(state_->region.length, &fill);
  {
    // The instance may be mid-invocation for another run (the pool re-leased
    // it after the producing invocation returned); its exec mutex
    // synchronizes this region read against that guest activity.
    MutexLock shim_lock(shim->exec_mutex());
    if (!fill.empty()) {
      const Stopwatch egress_timer;
      RR_RETURN_IF_ERROR(shim->sandbox().ReadMemoryHost(state_->region.address,
                                                        fill));
      if (wasm_io != nullptr) *wasm_io += egress_timer.Elapsed();
      rr::Buffer::CountExternalCopy(fill.size());
    }
    (void)shim->ReleaseRegion(state_->region);
  }
  state_->shim = nullptr;
  state_->buffer = std::move(buffer);
  state_->materialized = true;
  return state_->buffer;
}

}  // namespace rr::core
