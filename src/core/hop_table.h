// HopTable: the per-pair cache of established hops, shared by every executor
// that moves data between registered functions.
//
// Historically this cache held parallel KernelHop/NetworkHop structs and the
// mode switch lived in a free ForwardAndInvoke — every new backend meant
// touching every executor. The table now fronts the polymorphic Transport
// layer (core/transport.h): placement selects the mode, the mode's Transport
// establishes a Hop on a pair's first use, and executors speak only the Hop
// interface. Hops persist across runs, so steady-state transfers never pay
// connection setup, and additional backends register without executor
// changes.
// The table also hosts the failure-recovery plane's per-hop CIRCUIT
// BREAKERS (resilience/breaker.h), keyed by (target function, replica):
// AdmitDispatch gates a dispatch in microseconds when a replica has proven
// dead, RecordDispatchOutcome feeds the state machine, and the snapshot /
// retry-after accessors surface breaker state to /healthz and the gateway's
// 503 Retry-After. Breakers are disabled (threshold 0) until
// set_breaker_options arms them — api::Runtime threads its
// ResiliencePolicy here.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/endpoint.h"
#include "core/transport.h"
#include "resilience/breaker.h"

namespace rr::core {

class HopTable {
 public:
  // Installs the three built-in transports (user / kernel / network).
  HopTable();

  // Sets the wire options (per-transfer deadlines) applied to hops
  // established from now on. Already-established hops keep the options they
  // connected with — Evict the affected pairs to re-establish. api::Runtime
  // threads its Options here before any hop exists.
  void set_wire_options(TransportOptions options);
  TransportOptions wire_options() const;

  // Installs `transport` as the backend for its mode, replacing the built-in.
  // Safe while transfers are in flight: an establishment already running on
  // the old backend completes on it (shared ownership), and
  // already-established hops keep serving until evicted — callers that swap
  // a backend mid-flight should Evict the affected endpoints.
  Status RegisterTransport(std::unique_ptr<Transport> transport);

  // Returns the cached hop for (source → target), establishing it through
  // the placement-selected transport on first use. Establishment of distinct
  // pairs proceeds in parallel (per-slot mutex, not the table-wide lock).
  // The returned reference is shared: a concurrent Evict closes the hop's
  // wire but the object outlives every holder, so in-flight transfers fail
  // cleanly instead of touching freed memory. `replica` > 0 connects to the
  // target's failover address of that index instead of its primary
  // (host, port) — each replica gets its own cache slot and its own wire.
  Result<std::shared_ptr<Hop>> Get(Endpoint& source, const Endpoint& target,
                                   size_t replica = 0);

  // --- circuit breakers (failure-recovery plane) ----------------------------

  // Arms (or reshapes) the breakers created from now on. Existing breakers
  // keep the options they were created with.
  void set_breaker_options(resilience::BreakerOptions options);

  // Gates one dispatch to (function, replica): Ok from a closed breaker or
  // an elapsed-cooldown probe, a typed kUnavailable (microseconds, never a
  // wire wait) while the replica is proven dead. Creates the breaker on
  // first use — before any failure can occur, so its state gauge scrapes as
  // closed from the first dispatch.
  Status AdmitDispatch(const std::string& function, size_t replica);

  // Feeds an admitted dispatch's terminal status to its breaker (wire-level
  // failures advance the trip streak; anything else resets it) and updates
  // the rr_breaker_state gauge.
  void RecordDispatchOutcome(const std::string& function, size_t replica,
                             const Status& status);

  struct BreakerInfo {
    std::string function;
    size_t replica = 0;
    resilience::BreakerState state = resilience::BreakerState::kClosed;
  };
  // Every breaker's current state (for /healthz).
  std::vector<BreakerInfo> BreakerSnapshot() const;

  // Time until the EARLIEST open breaker admits its half-open probe — the
  // gateway's Retry-After hint. nullopt when no breaker is open.
  std::optional<Nanos> OpenBreakerRetryAfter() const;

  // Drops (and Close()s) every cached hop whose source or target is `name`,
  // so no hop keeps a connection whose peer is being replaced (control
  // plane) or has proven dead (a remote delivery timeout). Transfers still
  // in flight on an evicted hop fail with the closed wire and release their
  // shared ownership; the next Get establishes a fresh hop. Returns the
  // number evicted.
  size_t Evict(const std::string& name);

  size_t size() const;

 private:
  // (source function, target function, target replica index).
  using PairKey = std::tuple<std::string, std::string, size_t>;

  // One cache slot per pair. The slot mutex serializes establishment so
  // concurrent first-use of distinct pairs connects in parallel instead of
  // serializing on the table lock. Shared ownership: an Evict racing an
  // establishment detaches the slot from the map and the straggler's hop
  // dies with its last user.
  struct Slot {
    Mutex mutex;
    std::shared_ptr<Hop> hop RR_GUARDED_BY(mutex);
  };

  // Returns the (function, replica) breaker, creating it under mutex_ on
  // first use with the current breaker options.
  resilience::CircuitBreaker& BreakerFor(const std::string& function,
                                         size_t replica);

  mutable Mutex mutex_;
  TransportOptions wire_options_ RR_GUARDED_BY(mutex_);
  resilience::BreakerOptions breaker_options_ RR_GUARDED_BY(mutex_){
      .failure_threshold = 0};
  std::map<TransferMode, std::shared_ptr<Transport>> transports_
      RR_GUARDED_BY(mutex_);
  std::map<PairKey, std::shared_ptr<Slot>> slots_ RR_GUARDED_BY(mutex_);
  // Breakers are created once and never erased (state must survive hop
  // eviction — eviction is exactly when a breaker matters); unique_ptr keeps
  // them address-stable under map rebalancing.
  std::map<std::pair<std::string, size_t>,
           std::unique_ptr<resilience::CircuitBreaker>>
      breakers_ RR_GUARDED_BY(mutex_);
};

}  // namespace rr::core
