// HopTable: the per-pair cache of established kernel/network hops, shared by
// every executor that moves data between registered functions.
//
// Historically this cache (and the ForwardAndInvoke switch over the three
// transfer modes) lived as private members of WorkflowManager, which limited
// execution to linear chains. Extracted here, the same connected channels
// back chains (WorkflowManager::RunChain), DAG executions (dag::DagExecutor),
// and anything a future scheduler dreams up — hops connect lazily on first
// use and persist across runs, so steady-state transfers never pay connection
// setup.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/endpoint.h"
#include "core/kernel_channel.h"
#include "core/network_channel.h"
#include "core/user_channel.h"

namespace rr::core {

class HopTable {
 public:
  // One cached duplex hop between two co-located or remote functions. The
  // per-hop mutex serializes establishment and concurrent transfers over the
  // same pair (DAG branches run in parallel; distinct pairs never contend,
  // and connection setup never blocks the table-wide lock). The channel
  // halves are engaged once the hop is established.
  struct KernelHop {
    std::mutex mutex;
    std::optional<KernelChannelSender> sender;
    std::optional<KernelChannelReceiver> receiver;
  };
  // A network hop's receiver half is present only for in-process loopback
  // hops (target port 0). Hops through a remote NodeAgent ingress hold just
  // the sender: receive + invoke happen on the remote node.
  struct NetworkHop {
    std::mutex mutex;
    std::optional<NetworkChannelSender> sender;
    std::optional<NetworkChannelReceiver> receiver;
  };

  // Returns the cached hop for (source, target), connecting it first if
  // needed. Pointers stay valid until the hop is evicted.
  Result<KernelHop*> Kernel(const std::string& source, const std::string& target);

  // For a target with an external ingress (port != 0) the hop connects
  // through the target node's agent with a routing preamble; otherwise an
  // in-process loopback listener stands in for the remote shim port.
  Result<NetworkHop*> Network(const std::string& source, const Endpoint& target);

  // Drops every cached hop whose source or target is `name`. Must be called
  // when an endpoint's shim is replaced or unregistered, so no hop keeps a
  // connection whose peer no longer exists. A control-plane operation: the
  // caller must ensure no transfer is in flight on the evicted endpoint.
  // Returns the number evicted.
  size_t Evict(const std::string& name);

  size_t size() const;

 private:
  using PairKey = std::pair<std::string, std::string>;

  mutable std::mutex mutex_;
  std::map<PairKey, std::unique_ptr<KernelHop>> kernel_hops_;
  std::map<PairKey, std::unique_ptr<NetworkHop>> network_hops_;
};

// Delivers `region` (the source function's output) into the target function's
// linear memory over the placement-selected mode, without invoking the
// target. Used for fan-in, where every predecessor's payload lands before the
// join function runs once. Fails for targets behind a remote NodeAgent
// ingress, whose delivery is invoke-coupled (the agent runs Algorithm 1's
// receive+invoke); callers handle that path themselves.
// `timing`, when non-null, receives the channel's wasm-io/transfer split.
Result<MemoryRegion> ForwardOverHop(HopTable& hops, Endpoint& source,
                                    const MemoryRegion& region, Endpoint& target,
                                    TransferTiming* timing = nullptr);

// Forward + invoke the target once on the delivered payload: the per-hop
// building block of RunChain and of single-predecessor DAG nodes.
Result<InvokeOutcome> ForwardAndInvoke(HopTable& hops, Endpoint& source,
                                       const MemoryRegion& region,
                                       Endpoint& target,
                                       TransferTiming* timing = nullptr);

}  // namespace rr::core
