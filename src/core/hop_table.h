// HopTable: the per-pair cache of established hops, shared by every executor
// that moves data between registered functions.
//
// Historically this cache held parallel KernelHop/NetworkHop structs and the
// mode switch lived in a free ForwardAndInvoke — every new backend meant
// touching every executor. The table now fronts the polymorphic Transport
// layer (core/transport.h): placement selects the mode, the mode's Transport
// establishes a Hop on a pair's first use, and executors speak only the Hop
// interface. Hops persist across runs, so steady-state transfers never pay
// connection setup, and additional backends register without executor
// changes.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/endpoint.h"
#include "core/transport.h"

namespace rr::core {

class HopTable {
 public:
  // Installs the three built-in transports (user / kernel / network).
  HopTable();

  // Sets the wire options (per-transfer deadlines) applied to hops
  // established from now on. Already-established hops keep the options they
  // connected with — Evict the affected pairs to re-establish. api::Runtime
  // threads its Options here before any hop exists.
  void set_wire_options(TransportOptions options);
  TransportOptions wire_options() const;

  // Installs `transport` as the backend for its mode, replacing the built-in.
  // Safe while transfers are in flight: an establishment already running on
  // the old backend completes on it (shared ownership), and
  // already-established hops keep serving until evicted — callers that swap
  // a backend mid-flight should Evict the affected endpoints.
  Status RegisterTransport(std::unique_ptr<Transport> transport);

  // Returns the cached hop for (source → target), establishing it through
  // the placement-selected transport on first use. Establishment of distinct
  // pairs proceeds in parallel (per-slot mutex, not the table-wide lock).
  // The returned reference is shared: a concurrent Evict closes the hop's
  // wire but the object outlives every holder, so in-flight transfers fail
  // cleanly instead of touching freed memory.
  Result<std::shared_ptr<Hop>> Get(Endpoint& source, const Endpoint& target);

  // Drops (and Close()s) every cached hop whose source or target is `name`,
  // so no hop keeps a connection whose peer is being replaced (control
  // plane) or has proven dead (a remote delivery timeout). Transfers still
  // in flight on an evicted hop fail with the closed wire and release their
  // shared ownership; the next Get establishes a fresh hop. Returns the
  // number evicted.
  size_t Evict(const std::string& name);

  size_t size() const;

 private:
  using PairKey = std::pair<std::string, std::string>;

  // One cache slot per pair. The slot mutex serializes establishment so
  // concurrent first-use of distinct pairs connects in parallel instead of
  // serializing on the table lock. Shared ownership: an Evict racing an
  // establishment detaches the slot from the map and the straggler's hop
  // dies with its last user.
  struct Slot {
    std::mutex mutex;
    std::shared_ptr<Hop> hop;
  };

  mutable std::mutex mutex_;
  TransportOptions wire_options_;
  std::map<TransferMode, std::shared_ptr<Transport>> transports_;
  std::map<PairKey, std::shared_ptr<Slot>> slots_;
};

}  // namespace rr::core
