// RegionGuard: RAII ownership of a placed-but-not-yet-consumed guest memory
// region.
//
// Every receive/invoke path follows the same shape: place a region in a
// target instance (PrepareInput or a RegionPlacer), fill it, hand it to an
// invoke that consumes it. Between placement and hand-off, any failure —
// splice error, write_memory_host rejection, failed invoke — used to leave
// the region allocated in the instance's guest heap forever (the instance
// returns to its pool and lives on). The guard makes the release structural:
// arm it right after placement, Dismiss() at the exact point ownership
// transfers (successful invoke, successful return to the caller), and every
// early exit releases automatically.
//
// Two deliberate non-features:
//  * No locking. deallocate_memory mutates the instance's DataAccess
//    registry, which the instance's exec mutex guards; the guard must live
//    inside a scope that already holds that lock (every receive path does),
//    or release explicitly via ReleaseNow() under it.
//  * No ownership of caller-provided regions. A RegionPlacer that returns a
//    slice of a fan-in gather region keeps ownership with the caller —
//    construct the guard with a null shim (Unowned()) and it does nothing.
#pragma once

#include <utility>

#include "core/shim.h"

namespace rr::core {

class RegionGuard {
 public:
  RegionGuard() = default;
  RegionGuard(Shim* shim, MemoryRegion region) : shim_(shim), region_(region) {}

  // A guard over a region someone else owns (e.g. a placer-provided fan-in
  // slice): Dismiss/ReleaseNow/destruction are all no-ops.
  static RegionGuard Unowned(MemoryRegion region) {
    return RegionGuard(nullptr, region);
  }

  ~RegionGuard() { (void)ReleaseNow(); }

  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;

  RegionGuard(RegionGuard&& other) noexcept
      : shim_(std::exchange(other.shim_, nullptr)), region_(other.region_) {}
  RegionGuard& operator=(RegionGuard&& other) noexcept {
    if (this != &other) {
      (void)ReleaseNow();
      shim_ = std::exchange(other.shim_, nullptr);
      region_ = other.region_;
    }
    return *this;
  }

  const MemoryRegion& region() const { return region_; }
  bool armed() const { return shim_ != nullptr; }

  // Ownership transferred (the invoke consumed the region, or the caller
  // takes it): the guard stands down.
  void Dismiss() { shim_ = nullptr; }

  // Explicit early release, for sites that must hold the instance's exec
  // mutex only briefly. Idempotent; OK on unarmed guards.
  Status ReleaseNow() {
    Shim* const shim = std::exchange(shim_, nullptr);
    if (shim == nullptr) return Status::Ok();
    return shim->ReleaseRegion(region_);
  }

 private:
  Shim* shim_ = nullptr;
  MemoryRegion region_{};
};

}  // namespace rr::core
