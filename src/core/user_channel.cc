#include "core/user_channel.h"

#include <cstring>

#include "obs/metrics.h"

namespace rr::core {
namespace {

obs::Counter& UserBytesTransferred() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_channel_bytes_total", "Payload bytes moved through data channels",
      {{"mode", "user"}, {"direction", "sent"}});
  return *counter;
}

}  // namespace

Result<UserSpaceChannel> UserSpaceChannel::Create(Shim* source, Shim* target) {
  if (source == nullptr || target == nullptr) {
    return InvalidArgumentError("user-space channel requires two shims");
  }
  if (!source->spec().SameTrustDomain(target->spec())) {
    return PermissionDeniedError(
        "user-space channel denied: " + source->name() + " and " +
        target->name() + " are not in the same workflow/tenant");
  }
  return UserSpaceChannel(source, target);
}

Result<MemoryRegion> UserSpaceChannel::Transfer(const MemoryRegion& source_region,
                                                const MemoryRegion* into) {
  // 1-2: locate + read the source data (zero-copy view via the shim).
  RR_ASSIGN_OR_RETURN(const ByteSpan source_view,
                      source_->OutputView(source_region));

  // 3-4: allocate in the target for the incoming data (or land in the
  // caller's pre-registered gather slice).
  MemoryRegion dest;
  if (into != nullptr) {
    if (into->length != source_region.length) {
      return InvalidArgumentError("destination slice length mismatch");
    }
    dest = *into;
  } else {
    RR_ASSIGN_OR_RETURN(dest, target_->PrepareInput(source_region.length));
  }
  RR_ASSIGN_OR_RETURN(MutableByteSpan dest_span, target_->InputSpan(dest));

  // 5: write — the single user-space copy between the two linear memories.
  if (!source_view.empty()) {
    std::memcpy(dest_span.data(), source_view.data(), source_view.size());
  }
  bytes_transferred_ += source_view.size();
  UserBytesTransferred().Inc(source_view.size());
  return dest;
}

Result<InvokeOutcome> UserSpaceChannel::TransferAndInvoke(
    const MemoryRegion& source_region) {
  RR_ASSIGN_OR_RETURN(const MemoryRegion dest, Transfer(source_region));
  return target_->InvokeOnRegion(dest);
}

}  // namespace rr::core
