// Network data transfer (§4.3, Fig. 5, Algorithm 1): remote functions
// exchange data through a *virtual data hose* — a pipe populated from the
// function's memory with vmsplice(2) and drained into a TCP socket with
// splice(2), so payload bytes are never copied between user and kernel
// space on the send path.
//
//   source shim: read_memory_host -> vmsplice -> pipe -> splice -> socket
//   target shim: socket -> splice -> pipe -> read -> write into Wasm VM
//
// A fixed binary header (frame length + per-transfer correlation token)
// precedes the payload; Roadrunner serializes O(metadata), never the body.
// The token lets invoke-coupled receivers (NodeAgent) attribute each
// completion to exactly the transfer that requested it — a late completion
// from a timed-out run can no longer be mis-claimed by the next run. Token 0
// means untracked (receive-coupled transfers that complete synchronously).
#pragma once

#include <string>

#include "core/shim.h"
#include "osal/pipe.h"
#include "osal/socket.h"
#include "osal/splice.h"

namespace rr::core {

// The virtual data hose: a pipe plus the splice plumbing, with a plain
// read/write fallback when the syscalls are unavailable.
class VirtualDataHose {
 public:
  static Result<VirtualDataHose> Create(size_t pipe_capacity = 1 << 20);

  // data (already in host-visible pages, e.g. a linear-memory view) -> fd.
  Status SendThrough(int socket_fd, ByteSpan data);

  // fd -> destination span (guest memory slice).
  Status ReceiveThrough(int socket_fd, MutableByteSpan out);

  bool using_splice() const { return use_splice_; }
  uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  explicit VirtualDataHose(osal::Pipe pipe)
      : pipe_(std::move(pipe)), use_splice_(osal::SpliceSupported()) {}

  osal::Pipe pipe_;
  bool use_splice_;
  uint64_t bytes_moved_ = 0;
};

class NetworkChannelSender {
 public:
  static Result<NetworkChannelSender> Connect(const std::string& host,
                                              uint16_t port);

  // Wraps an already-connected socket (e.g. after a NodeAgent routing
  // preamble has been exchanged).
  static Result<NetworkChannelSender> FromConnection(osal::Connection conn);

  // Algorithm 1, source side: read_memory_host on the region, then
  // vmsplice+splice through the hose. kShimStaging stages the region in a
  // shim buffer first (the paper's implementation); kDirectGuest vmsplices
  // the linear-memory pages themselves. `token` stamps the frame header.
  Status Send(Shim& source, const MemoryRegion& region,
              CopyMode mode = CopyMode::kShimStaging, uint64_t token = 0);
  Status SendBytes(ByteSpan data, uint64_t token = 0);

  // Host-resident payload from the zero-copy plane: one frame whose body is
  // hosed chunk by chunk straight from the shared storage — no staging copy,
  // no assembly of segmented (fan-in) payloads.
  Status SendBuffer(const rr::BufferView& payload, uint64_t token = 0);

  // Kills the wire without destroying the sender: a Send already in flight
  // (possibly on another thread) fails with EPIPE, and the peer's receiver
  // sees EOF. Used by hop eviction, where in-flight users still hold the
  // hop.
  void ShutdownWire() { conn_.ShutdownBoth(); }

  uint64_t bytes_sent() const { return bytes_sent_; }
  bool using_splice() const { return hose_.using_splice(); }
  const TransferTiming& last_timing() const { return timing_; }

 private:
  NetworkChannelSender(osal::Connection conn, VirtualDataHose hose)
      : conn_(std::move(conn)), hose_(std::move(hose)) {}

  osal::Connection conn_;
  VirtualDataHose hose_;
  uint64_t bytes_sent_ = 0;
  TransferTiming timing_;
};

// The fixed 16-byte frame header preceding every payload.
struct FrameInfo {
  uint64_t length = 0;
  uint64_t token = 0;
};

class NetworkChannelReceiver {
 public:
  static Result<NetworkChannelReceiver> FromConnection(osal::Connection conn);

  // Two-phase receive: blocks for the next frame's header alone. Lets an
  // agent park here without holding the target shim, then serialize the body
  // delivery + invoke under the shim's lock (ReceiveBody).
  Result<FrameInfo> ReceiveHeader();
  Result<MemoryRegion> ReceiveBody(const FrameInfo& frame, Shim& target,
                                   CopyMode mode = CopyMode::kShimStaging,
                                   const RegionPlacer* place = nullptr);

  // Algorithm 1, target side: splice from the socket into the hose,
  // allocate_memory(length) in the target, write into its linear memory.
  // One-shot header+body; `token`, when non-null, receives the frame's
  // correlation token. A non-null `place` overrides the allocation: the
  // payload lands in the region it returns (a fan-in gather slice).
  Result<MemoryRegion> ReceiveInto(Shim& target,
                                   CopyMode mode = CopyMode::kShimStaging,
                                   uint64_t* token = nullptr,
                                   const RegionPlacer* place = nullptr);
  Result<InvokeOutcome> ReceiveAndInvoke(Shim& target,
                                         CopyMode mode = CopyMode::kShimStaging,
                                         uint64_t* token = nullptr);

  uint64_t bytes_received() const { return bytes_received_; }
  const TransferTiming& last_timing() const { return timing_; }

 private:
  NetworkChannelReceiver(osal::Connection conn, VirtualDataHose hose)
      : conn_(std::move(conn)), hose_(std::move(hose)) {}

  osal::Connection conn_;
  VirtualDataHose hose_;
  uint64_t bytes_received_ = 0;
  TransferTiming timing_;
};

class NetworkChannelListener {
 public:
  static Result<NetworkChannelListener> Bind(uint16_t port);

  uint16_t port() const { return listener_.port(); }

  Result<NetworkChannelReceiver> Accept();

 private:
  explicit NetworkChannelListener(osal::TcpListener listener)
      : listener_(std::move(listener)) {}

  osal::TcpListener listener_;
};

}  // namespace rr::core
