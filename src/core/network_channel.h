// Network data transfer (§4.3, Fig. 5, Algorithm 1): remote functions
// exchange data through a *virtual data hose* — a pipe populated from the
// function's memory with vmsplice(2) and drained into a TCP socket with
// splice(2), so payload bytes are never copied between user and kernel
// space on the send path.
//
//   source shim: read_memory_host -> vmsplice -> pipe -> splice -> socket
//   target shim: socket -> splice -> pipe -> read -> write into Wasm VM
//
// A fixed binary header (frame length + per-transfer correlation token)
// precedes the payload; Roadrunner serializes O(metadata), never the body.
// The token lets invoke-coupled receivers (NodeAgent) attribute each
// completion to exactly the transfer that requested it — a late completion
// from a timed-out run can no longer be mis-claimed by the next run. Token 0
// means untracked (receive-coupled transfers that complete synchronously).
//
// Failure semantics (the hardened wire plane):
//
//  * Every transfer ends with a STATUS-BEARING ACK FRAME from the receiver:
//    [u8 magic 0xA6][u8 status code][u16 LE detail length][detail bytes].
//    The ack is sent only after the payload has durably landed in the target
//    (region placed AND written); a receiver-side failure — region
//    placement, write_memory_host, an exhausted instance pool — travels back
//    as its typed StatusCode plus a truncated detail string, so the sender
//    fails with the remote error instead of recording success or hanging.
//    (The old protocol was a single magic byte acked before the paper path
//    even placed the region.)
//  * Every blocking wait — header, body chunk, ack — is bounded by a
//    per-transfer deadline (set_transfer_deadline; threaded from
//    TransportOptions / api::Runtime::Options). A peer that dies or stalls
//    mid-transfer surfaces as kDeadlineExceeded/kDataLoss within the bound.
//  * A receiver that must fail a frame WITHOUT desyncing the channel drains
//    the body first (RejectBody / the placement-failure paths), so one bad
//    transfer does not kill the connection for the transfers behind it. Only
//    an unrecoverable mid-body error (partial splice, implausible header)
//    tears the channel down.
//  * No error path leaks a placed guest region: receive-side placement is
//    guarded by core::RegionGuard until ownership transfers.
#pragma once

#include <atomic>
#include <string>

#include "core/region_guard.h"
#include "core/shim.h"
#include "osal/pipe.h"
#include "osal/socket.h"
#include "osal/splice.h"

namespace rr::core {

// The virtual data hose: a pipe plus the splice plumbing, with a plain
// read/write fallback when the syscalls are unavailable.
class VirtualDataHose {
 public:
  static Result<VirtualDataHose> Create(size_t pipe_capacity = 1 << 20);

  // data (already in host-visible pages, e.g. a linear-memory view) -> fd.
  // Socket-side waits are bounded by `deadline` (kNoDeadline = unbounded).
  Status SendThrough(int socket_fd, ByteSpan data,
                     TimePoint deadline = osal::kNoDeadline);

  // fd -> destination span (guest memory slice).
  Status ReceiveThrough(int socket_fd, MutableByteSpan out,
                        TimePoint deadline = osal::kNoDeadline);

  bool using_splice() const { return use_splice_; }
  uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  explicit VirtualDataHose(osal::Pipe pipe)
      : pipe_(std::move(pipe)), use_splice_(osal::SpliceSupported()) {}

  osal::Pipe pipe_;
  bool use_splice_;
  uint64_t bytes_moved_ = 0;
};

class NetworkChannelSender {
 public:
  // Hand-written moves: the wire-health flag is atomic (unmovable), and a
  // sender is only ever moved during construction, before any concurrent
  // access exists.
  NetworkChannelSender(NetworkChannelSender&& other) noexcept
      : conn_(std::move(other.conn_)),
        hose_(std::move(other.hose_)),
        transfer_deadline_(other.transfer_deadline_),
        wire_ok_(other.wire_ok_.load(std::memory_order_relaxed)),
        bytes_sent_(other.bytes_sent_),
        timing_(other.timing_) {}
  NetworkChannelSender& operator=(NetworkChannelSender&& other) noexcept {
    if (this != &other) {
      conn_ = std::move(other.conn_);
      hose_ = std::move(other.hose_);
      transfer_deadline_ = other.transfer_deadline_;
      wire_ok_.store(other.wire_ok_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      bytes_sent_ = other.bytes_sent_;
      timing_ = other.timing_;
    }
    return *this;
  }

  static Result<NetworkChannelSender> Connect(const std::string& host,
                                              uint16_t port);

  // Wraps an already-connected socket (e.g. after a NodeAgent routing
  // preamble has been exchanged).
  static Result<NetworkChannelSender> FromConnection(osal::Connection conn);

  // Algorithm 1, source side: read_memory_host on the region, then
  // vmsplice+splice through the hose. kShimStaging stages the region in a
  // shim buffer first (the paper's implementation); kDirectGuest vmsplices
  // the linear-memory pages themselves. `token` stamps the frame header.
  Status Send(Shim& source, const MemoryRegion& region,
              CopyMode mode = CopyMode::kShimStaging, uint64_t token = 0);
  Status SendBytes(ByteSpan data, uint64_t token = 0);

  // Host-resident payload from the zero-copy plane: one frame whose body is
  // hosed chunk by chunk straight from the shared storage — no staging copy,
  // no assembly of segmented (fan-in) payloads. Blocks until the receiver's
  // ack frame arrives; a non-OK ack returns the receiver's typed Status
  // (with its detail), an ack that never comes returns kDeadlineExceeded
  // once the transfer deadline expires, and a peer that died mid-transfer
  // returns kDataLoss.
  Status SendBuffer(const rr::BufferView& payload, uint64_t token = 0);

  // Bounds every blocking wait of one transfer (body send, ack). Zero or
  // negative = unbounded (the default, for compatibility with bare channel
  // users; the transport layer always sets it).
  void set_transfer_deadline(Nanos timeout) { transfer_deadline_ = timeout; }
  Nanos transfer_deadline() const { return transfer_deadline_; }

  // Kills the wire without destroying the sender: a Send already in flight
  // (possibly on another thread) fails with EPIPE, and the peer's receiver
  // sees EOF. Used by hop eviction, where in-flight users still hold the
  // hop.
  void ShutdownWire();

  // False once the wire died — torn down explicitly, or killed by a
  // transfer that failed without a decoded ack (indeterminate ack stream).
  // A caching layer uses this to decide whether a failed transfer poisoned
  // the channel (evict, reconnect) or left it healthy (a typed in-sync
  // refusal: keep serving, other transfers on this hop are unaffected).
  bool wire_ok() const { return wire_ok_.load(std::memory_order_relaxed); }

  uint64_t bytes_sent() const { return bytes_sent_; }
  bool using_splice() const { return hose_.using_splice(); }
  const TransferTiming& last_timing() const { return timing_; }

 private:
  NetworkChannelSender(osal::Connection conn, VirtualDataHose hose)
      : conn_(std::move(conn)), hose_(std::move(hose)) {}

  // Reads and decodes the receiver's ack frame. `*ack_decoded` is set true
  // once a well-formed ack was consumed (whatever status it carries) — the
  // channel is then provably still synchronized; on false the ack stream is
  // dead or indeterminate and the channel must not be reused.
  Status ReadAck(TimePoint deadline, bool* ack_decoded);

  osal::Connection conn_;
  VirtualDataHose hose_;
  Nanos transfer_deadline_{0};
  // Atomic: Sends run under the owning hop's mutex, but eviction's
  // ShutdownWire and a health probe may race them from other threads.
  std::atomic<bool> wire_ok_{true};
  uint64_t bytes_sent_ = 0;
  TransferTiming timing_;
};

// Flag bit on the frame header's length field signalling a trace-context
// extension. The length is validated to fit kMaxFrameBytes (< 2^32), so the
// high bits of the wire field are guaranteed zero on legacy frames — a
// legacy peer's frames parse unchanged, and a frame carrying the flag is
// followed by 16 extra header bytes: [u64 trace id][u64 parent span id].
constexpr uint64_t kFrameTraceFlag = 1ull << 63;

// The status-bearing delivery ack terminating every legacy transfer
// (receiver -> sender): [u8 magic][u8 status code][u16 LE detail length]
// [detail bytes]. Shared between NetworkChannelReceiver and the reactor
// agent's legacy-dialect state machine. Detail strings are diagnostics, not
// payload: truncated hard so a misbehaving receiver cannot balloon the ack.
constexpr uint8_t kWireAckMagic = 0xA6;
constexpr size_t kWireAckHeaderBytes = 4;
constexpr size_t kWireMaxAckDetail = 512;

// The frame header preceding every payload: 16 fixed bytes (length +
// correlation token), plus the optional 16-byte trace-context extension
// (kFrameTraceFlag). trace_id 0 = no context (legacy frame, or tracing off).
struct FrameInfo {
  uint64_t length = 0;
  uint64_t token = 0;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

class NetworkChannelReceiver {
 public:
  static Result<NetworkChannelReceiver> FromConnection(osal::Connection conn);

  // Two-phase receive: blocks for the next frame's header alone. Lets an
  // agent park here without holding the target shim, then serialize the body
  // delivery + invoke under the shim's lock (ReceiveBody). The default
  // kNoDeadline is deliberate — an idle channel waits for its next frame
  // indefinitely; pass a deadline when the header is part of one bounded
  // transfer (ReceiveInto does).
  Result<FrameInfo> ReceiveHeader(TimePoint deadline = osal::kNoDeadline);

  // Delivers the frame's body into `target` and acks the transfer. The ack
  // frame is sent only after the payload durably landed (region placed and
  // written); on a receiver-side failure the error ack carries the typed
  // status back to the sender. When the failure path managed to drain the
  // body and ack (placement/write failures), the channel is still in sync —
  // `*rejected_in_sync` is set true and the caller may keep serving frames;
  // when false on error, the channel is desynced and must be torn down.
  // No failure leaks a placed region (RegionGuard on both copy modes).
  Result<MemoryRegion> ReceiveBody(const FrameInfo& frame, Shim& target,
                                   CopyMode mode = CopyMode::kShimStaging,
                                   const RegionPlacer* place = nullptr,
                                   bool* rejected_in_sync = nullptr);

  // Refuses a frame WITHOUT desyncing the channel: drains the body into a
  // scratch buffer (deadline-bounded) and sends `reason` as the error ack.
  // The sender's pending transfer fails with `reason`'s code + message; the
  // channel stays usable for subsequent frames. Used when the frame cannot
  // even be delivered (no pool instance available). Fails only when the
  // drain or ack write fails — the channel is then dead.
  Status RejectBody(const FrameInfo& frame, const Status& reason);

  // Algorithm 1, target side: splice from the socket into the hose,
  // allocate_memory(length) in the target, write into its linear memory.
  // One-shot header+body; `token`, when non-null, receives the frame's
  // correlation token. A non-null `place` overrides the allocation: the
  // payload lands in the region it returns (a fan-in gather slice).
  Result<MemoryRegion> ReceiveInto(Shim& target,
                                   CopyMode mode = CopyMode::kShimStaging,
                                   uint64_t* token = nullptr,
                                   const RegionPlacer* place = nullptr);
  Result<InvokeOutcome> ReceiveAndInvoke(Shim& target,
                                         CopyMode mode = CopyMode::kShimStaging,
                                         uint64_t* token = nullptr);

  // Bounds every blocking wait of one transfer (body, ack write; the header
  // too on the one-shot ReceiveInto path). Zero or negative = unbounded.
  void set_transfer_deadline(Nanos timeout) { transfer_deadline_ = timeout; }
  Nanos transfer_deadline() const { return transfer_deadline_; }

  uint64_t bytes_received() const { return bytes_received_; }
  const TransferTiming& last_timing() const { return timing_; }

 private:
  NetworkChannelReceiver(osal::Connection conn, VirtualDataHose hose)
      : conn_(std::move(conn)), hose_(std::move(hose)) {}

  // Sends the status-bearing ack frame (detail truncated to the wire cap).
  Status SendAck(const Status& status, TimePoint deadline);

  // Reads and discards `length` body bytes so an error ack can follow on a
  // still-synchronized channel.
  Status DrainBody(uint64_t length, TimePoint deadline);

  // The refusal protocol: drain the (still fully on-wire) body, error-ack
  // with `reason`. Sets `*rejected_in_sync` once both succeeded — the
  // channel is then provably synchronized for the next frame. Returns the
  // transport failure if the channel died instead.
  Status DrainAndReject(uint64_t body_length, const Status& reason,
                        TimePoint deadline, bool* rejected_in_sync);

  osal::Connection conn_;
  VirtualDataHose hose_;
  Nanos transfer_deadline_{0};
  uint64_t bytes_received_ = 0;
  TransferTiming timing_;
};

class NetworkChannelListener {
 public:
  static Result<NetworkChannelListener> Bind(uint16_t port);

  uint16_t port() const { return listener_.port(); }

  Result<NetworkChannelReceiver> Accept();

 private:
  explicit NetworkChannelListener(osal::TcpListener listener)
      : listener_(std::move(listener)) {}

  osal::TcpListener listener_;
};

}  // namespace rr::core
