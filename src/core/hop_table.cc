#include "core/hop_table.h"

#include <thread>

#include "core/node_agent.h"

namespace rr::core {

Result<HopTable::KernelHop*> HopTable::Kernel(const std::string& source,
                                              const std::string& target) {
  KernelHop* hop;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hop = kernel_hops_.try_emplace(PairKey{source, target},
                                   std::make_unique<KernelHop>())
              .first->second.get();
  }
  // Establish under the hop's own mutex: concurrent first-use of distinct
  // pairs connects in parallel instead of serializing on the table lock.
  std::lock_guard<std::mutex> hop_lock(hop->mutex);
  if (!hop->sender.has_value()) {
    RR_ASSIGN_OR_RETURN(auto pair, MakeKernelChannelPair());
    hop->sender.emplace(std::move(pair.first));
    hop->receiver.emplace(std::move(pair.second));
  }
  return hop;
}

Result<HopTable::NetworkHop*> HopTable::Network(const std::string& source,
                                                const Endpoint& target) {
  NetworkHop* hop;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hop = network_hops_.try_emplace(PairKey{source, target.shim->name()},
                                    std::make_unique<NetworkHop>())
              .first->second.get();
  }
  std::lock_guard<std::mutex> hop_lock(hop->mutex);
  if (!hop->sender.has_value()) {
    if (target.port == 0) {
      // No external ingress registered: create a loopback listener on demand
      // (the in-process stand-in for the remote node's shim port).
      RR_ASSIGN_OR_RETURN(NetworkChannelListener listener,
                          NetworkChannelListener::Bind(0));
      RR_ASSIGN_OR_RETURN(
          NetworkChannelSender sender,
          NetworkChannelSender::Connect(target.host, listener.port()));
      RR_ASSIGN_OR_RETURN(NetworkChannelReceiver receiver, listener.Accept());
      hop->sender.emplace(std::move(sender));
      hop->receiver.emplace(std::move(receiver));
    } else {
      // Route through the target node's agent: the preamble names the
      // function, the agent hands the connection to its shim's receiver.
      RR_ASSIGN_OR_RETURN(
          NetworkChannelSender sender,
          ConnectToRemoteFunction(target.host, target.port, target.shim->name()));
      hop->sender.emplace(std::move(sender));
    }
  }
  return hop;
}

size_t HopTable::Evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t evicted = 0;
  const auto involves = [&name](const PairKey& key) {
    return key.first == name || key.second == name;
  };
  for (auto it = kernel_hops_.begin(); it != kernel_hops_.end();) {
    if (involves(it->first)) {
      it = kernel_hops_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  for (auto it = network_hops_.begin(); it != network_hops_.end();) {
    if (involves(it->first)) {
      it = network_hops_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

size_t HopTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kernel_hops_.size() + network_hops_.size();
}

namespace {

// The two shims are distinct sandboxes; run the send concurrently so a
// payload larger than the kernel socket buffer cannot self-deadlock.
template <typename Sender, typename Receiver>
Result<MemoryRegion> SendAndReceive(Sender& sender, Receiver& receiver,
                                    Endpoint& source, const MemoryRegion& region,
                                    Endpoint& target, TransferTiming* timing) {
  Status send_status;
  std::thread send_thread(
      [&] { send_status = sender.Send(*source.shim, region); });
  auto delivered = receiver.ReceiveInto(*target.shim);
  send_thread.join();
  RR_RETURN_IF_ERROR(send_status);
  if (delivered.ok() && timing != nullptr) {
    *timing += sender.last_timing();
    *timing += receiver.last_timing();
  }
  return delivered;
}

}  // namespace

Result<MemoryRegion> ForwardOverHop(HopTable& hops, Endpoint& source,
                                    const MemoryRegion& region, Endpoint& target,
                                    TransferTiming* timing) {
  switch (SelectMode(source.location, target.location)) {
    case TransferMode::kUserSpace: {
      RR_ASSIGN_OR_RETURN(UserSpaceChannel channel,
                          UserSpaceChannel::Create(source.shim, target.shim));
      return channel.Transfer(region);
    }
    case TransferMode::kKernelSpace: {
      RR_ASSIGN_OR_RETURN(
          HopTable::KernelHop* const hop,
          hops.Kernel(source.shim->name(), target.shim->name()));
      std::lock_guard<std::mutex> lock(hop->mutex);
      return SendAndReceive(*hop->sender, *hop->receiver, source, region,
                            target, timing);
    }
    case TransferMode::kNetwork: {
      if (target.port != 0) {
        // Checked before connecting: a failed operation must not park a
        // worker on the remote agent.
        return FailedPreconditionError(
            "delivery through a NodeAgent ingress is invoke-coupled; "
            "the remote agent receives and invokes (dag::DagExecutor "
            "handles this path)");
      }
      RR_ASSIGN_OR_RETURN(HopTable::NetworkHop* const hop,
                          hops.Network(source.shim->name(), target));
      std::lock_guard<std::mutex> lock(hop->mutex);
      return SendAndReceive(*hop->sender, *hop->receiver, source, region,
                            target, timing);
    }
  }
  return InternalError("unreachable transfer mode");
}

Result<InvokeOutcome> ForwardAndInvoke(HopTable& hops, Endpoint& source,
                                       const MemoryRegion& region,
                                       Endpoint& target, TransferTiming* timing) {
  RR_ASSIGN_OR_RETURN(const MemoryRegion delivered,
                      ForwardOverHop(hops, source, region, target, timing));
  return target.shim->InvokeOnRegion(delivered);
}

}  // namespace rr::core
