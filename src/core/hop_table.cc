#include "core/hop_table.h"

#include <utility>
#include <vector>

#include "resilience/metrics.h"

namespace rr::core {

HopTable::HopTable() {
  (void)RegisterTransport(MakeUserSpaceTransport());
  (void)RegisterTransport(MakeKernelTransport());
  (void)RegisterTransport(MakeNetworkTransport());
}

void HopTable::set_wire_options(TransportOptions options) {
  MutexLock lock(mutex_);
  wire_options_ = options;
}

TransportOptions HopTable::wire_options() const {
  MutexLock lock(mutex_);
  return wire_options_;
}

void HopTable::set_breaker_options(resilience::BreakerOptions options) {
  MutexLock lock(mutex_);
  breaker_options_ = options;
}

Status HopTable::RegisterTransport(std::unique_ptr<Transport> transport) {
  if (transport == nullptr) return InvalidArgumentError("null transport");
  MutexLock lock(mutex_);
  transports_[transport->mode()] = std::move(transport);
  return Status::Ok();
}

Result<std::shared_ptr<Hop>> HopTable::Get(Endpoint& source,
                                           const Endpoint& target,
                                           size_t replica) {
  const TransferMode mode = SelectMode(source.location, target.location);
  if (replica >= target.replica_count()) {
    return InvalidArgumentError("replica index out of range for function " +
                                target.shim->name());
  }
  std::shared_ptr<Slot> slot;
  std::shared_ptr<Transport> transport;
  TransportOptions options;
  {
    MutexLock lock(mutex_);
    const auto it = transports_.find(mode);
    if (it == transports_.end()) {
      return UnimplementedError(std::string("no transport registered for ") +
                                std::string(TransferModeName(mode)));
    }
    transport = it->second;
    options = wire_options_;
    slot = slots_
               .try_emplace(PairKey{source.shim->name(), target.shim->name(),
                                    replica},
                            std::make_shared<Slot>())
               .first->second;
  }
  // Establish under the slot's own mutex: concurrent first-use of distinct
  // pairs connects in parallel instead of serializing on the table lock.
  MutexLock slot_lock(slot->mutex);
  if (slot->hop == nullptr) {
    // A failover replica connects to its own ingress address: same pool,
    // same placement, different agent.
    std::unique_ptr<Hop> hop;
    if (replica == 0) {
      RR_ASSIGN_OR_RETURN(hop, transport->Connect(source, target, options));
    } else {
      Endpoint alternate = target;
      const AgentAddress address = target.replica_address(replica);
      alternate.host = address.host;
      alternate.port = address.port;
      RR_ASSIGN_OR_RETURN(hop, transport->Connect(source, alternate, options));
    }
    slot->hop = std::move(hop);
  }
  return slot->hop;
}

size_t HopTable::Evict(const std::string& name) {
  std::vector<std::shared_ptr<Slot>> removed;
  {
    MutexLock lock(mutex_);
    for (auto it = slots_.begin(); it != slots_.end();) {
      if (std::get<0>(it->first) == name || std::get<1>(it->first) == name) {
        removed.push_back(it->second);
        it = slots_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // slot->hop is guarded by the slot's own mutex (a concurrent Get may be
  // establishing it right now), so read it under that lock — and close
  // outside the table lock: shutting a wire down must not stall unrelated
  // pairs' Get calls.
  size_t evicted = 0;
  for (const std::shared_ptr<Slot>& slot : removed) {
    std::shared_ptr<Hop> hop;
    {
      MutexLock slot_lock(slot->mutex);
      hop = std::move(slot->hop);
    }
    if (hop != nullptr) {
      hop->Close();
      ++evicted;
    }
  }
  return evicted;
}

resilience::CircuitBreaker& HopTable::BreakerFor(const std::string& function,
                                                 size_t replica) {
  MutexLock lock(mutex_);
  auto& breaker = breakers_[{function, replica}];
  if (breaker == nullptr) {
    breaker = std::make_unique<resilience::CircuitBreaker>(breaker_options_);
    if (breaker->enabled()) {
      // Register the state gauge at creation — the first dispatch, before
      // any failure — so a scrape always sees the series (closed = 0).
      resilience::BreakerStateGauge(function, replica).Set(0);
    }
  }
  return *breaker;
}

Status HopTable::AdmitDispatch(const std::string& function, size_t replica) {
  resilience::CircuitBreaker& breaker = BreakerFor(function, replica);
  const Status admitted = breaker.Admit();
  if (breaker.enabled()) {
    resilience::BreakerStateGauge(function, replica)
        .Set(static_cast<int64_t>(breaker.state()));
  }
  return admitted;
}

void HopTable::RecordDispatchOutcome(const std::string& function,
                                     size_t replica, const Status& status) {
  resilience::CircuitBreaker& breaker = BreakerFor(function, replica);
  breaker.RecordOutcome(status);
  if (breaker.enabled()) {
    resilience::BreakerStateGauge(function, replica)
        .Set(static_cast<int64_t>(breaker.state()));
  }
}

std::vector<HopTable::BreakerInfo> HopTable::BreakerSnapshot() const {
  std::vector<BreakerInfo> snapshot;
  MutexLock lock(mutex_);
  snapshot.reserve(breakers_.size());
  for (const auto& [key, breaker] : breakers_) {
    snapshot.push_back(BreakerInfo{key.first, key.second, breaker->state()});
  }
  return snapshot;
}

std::optional<Nanos> HopTable::OpenBreakerRetryAfter() const {
  std::optional<TimePoint> earliest;
  {
    MutexLock lock(mutex_);
    for (const auto& [key, breaker] : breakers_) {
      if (breaker->state() != resilience::BreakerState::kOpen) continue;
      const TimePoint probe = breaker->probe_at();
      if (!earliest.has_value() || probe < *earliest) earliest = probe;
    }
  }
  if (!earliest.has_value()) return std::nullopt;
  const TimePoint now = Now();
  return *earliest > now ? *earliest - now : Nanos{0};
}

size_t HopTable::size() const {
  MutexLock lock(mutex_);
  return slots_.size();
}

}  // namespace rr::core
