#include "core/hop_table.h"

#include <vector>

namespace rr::core {

HopTable::HopTable() {
  (void)RegisterTransport(MakeUserSpaceTransport());
  (void)RegisterTransport(MakeKernelTransport());
  (void)RegisterTransport(MakeNetworkTransport());
}

void HopTable::set_wire_options(TransportOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  wire_options_ = options;
}

TransportOptions HopTable::wire_options() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wire_options_;
}

Status HopTable::RegisterTransport(std::unique_ptr<Transport> transport) {
  if (transport == nullptr) return InvalidArgumentError("null transport");
  std::lock_guard<std::mutex> lock(mutex_);
  transports_[transport->mode()] = std::move(transport);
  return Status::Ok();
}

Result<std::shared_ptr<Hop>> HopTable::Get(Endpoint& source,
                                           const Endpoint& target) {
  const TransferMode mode = SelectMode(source.location, target.location);
  std::shared_ptr<Slot> slot;
  std::shared_ptr<Transport> transport;
  TransportOptions options;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = transports_.find(mode);
    if (it == transports_.end()) {
      return UnimplementedError(std::string("no transport registered for ") +
                                std::string(TransferModeName(mode)));
    }
    transport = it->second;
    options = wire_options_;
    slot = slots_
               .try_emplace(PairKey{source.shim->name(), target.shim->name()},
                            std::make_shared<Slot>())
               .first->second;
  }
  // Establish under the slot's own mutex: concurrent first-use of distinct
  // pairs connects in parallel instead of serializing on the table lock.
  std::lock_guard<std::mutex> slot_lock(slot->mutex);
  if (slot->hop == nullptr) {
    RR_ASSIGN_OR_RETURN(std::unique_ptr<Hop> hop,
                        transport->Connect(source, target, options));
    slot->hop = std::move(hop);
  }
  return slot->hop;
}

size_t HopTable::Evict(const std::string& name) {
  std::vector<std::shared_ptr<Slot>> removed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = slots_.begin(); it != slots_.end();) {
      if (it->first.first == name || it->first.second == name) {
        removed.push_back(it->second);
        it = slots_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // slot->hop is guarded by the slot's own mutex (a concurrent Get may be
  // establishing it right now), so read it under that lock — and close
  // outside the table lock: shutting a wire down must not stall unrelated
  // pairs' Get calls.
  size_t evicted = 0;
  for (const std::shared_ptr<Slot>& slot : removed) {
    std::shared_ptr<Hop> hop;
    {
      std::lock_guard<std::mutex> slot_lock(slot->mutex);
      hop = std::move(slot->hop);
    }
    if (hop != nullptr) {
      hop->Close();
      ++evicted;
    }
  }
  return evicted;
}

size_t HopTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

}  // namespace rr::core
