#include "core/endpoint.h"

namespace rr::core {

std::string_view TransferModeName(TransferMode mode) {
  switch (mode) {
    case TransferMode::kUserSpace: return "user-space";
    case TransferMode::kKernelSpace: return "kernel-space";
    case TransferMode::kNetwork: return "network";
  }
  return "?";
}

TransferMode SelectMode(const Location& source, const Location& target) {
  if (source.SameVm(target)) return TransferMode::kUserSpace;
  if (source.SameNode(target)) return TransferMode::kKernelSpace;
  return TransferMode::kNetwork;
}

}  // namespace rr::core
