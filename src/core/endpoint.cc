#include "core/endpoint.h"

namespace rr::core {

std::string_view TransferModeName(TransferMode mode) {
  switch (mode) {
    case TransferMode::kUserSpace: return "user-space";
    case TransferMode::kKernelSpace: return "kernel-space";
    case TransferMode::kNetwork: return "network";
  }
  return "?";
}

TransferMode SelectMode(const Location& source, const Location& target) {
  if (source.SameVm(target)) return TransferMode::kUserSpace;
  if (source.SameNode(target)) return TransferMode::kKernelSpace;
  return TransferMode::kNetwork;
}

Result<ShimLease> Endpoint::Lease() {
  if (pool != nullptr) return pool->Lease();
  if (shim == nullptr) {
    return FailedPreconditionError("endpoint has neither pool nor shim");
  }
  // Pool-less endpoint (built outside a WorkflowManager): adopt per call
  // rather than caching into `pool` — a member write here would race
  // concurrent Lease() calls on a shared endpoint. Overlapping leases share
  // one pool through the adoption memo; once the last lease drops, the memo
  // expires and a later call rebuilds the (cheap, 1-instance wrapper) pool.
  RR_ASSIGN_OR_RETURN(std::shared_ptr<ShimPool> adopted, ShimPool::Adopt(shim));
  return adopted->Lease();
}

}  // namespace rr::core
