#include "core/mux_client.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"
#include "obs/metrics.h"
#include "osal/socket.h"
#include "resilience/fault_injector.h"

namespace rr::core {
namespace {

obs::Counter& StreamStalls() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_agent_stream_stalls_total",
      "Times a sender stream exhausted its flow-control window and left the "
      "send ring");
  return *counter;
}

// Eager registration: the series appears in scrapes at zero.
const bool g_mux_client_metrics_registered = [] {
  StreamStalls();
  return true;
}();

constexpr uint8_t kMaxWireStatusCode =
    static_cast<uint8_t>(StatusCode::kTokenMismatch);

constexpr size_t kMaxMuxFunctionName = 256;

Bytes EncodeCancel(uint32_t stream_id) {
  MuxFrameHeader h;
  h.type = kMuxFrameCancel;
  h.stream_id = stream_id;
  Bytes out(kMuxFrameHeaderBytes);
  EncodeMuxFrameHeader(h, out.data());
  return out;
}

}  // namespace

std::shared_ptr<MuxClient> MuxClient::Create(
    std::shared_ptr<osal::Reactor> reactor, std::string host, uint16_t port) {
  auto client = std::shared_ptr<MuxClient>(
      new MuxClient(reactor, std::move(host), port));
  // The sweep ticker can fire (and take mutex_) the instant AddTicker
  // returns; publish the id under the same lock Close() reads it with.
  MutexLock lock(client->mutex_);
  client->ticker_id_ = reactor->AddTicker(
      std::chrono::milliseconds(50),
      [weak = std::weak_ptr<MuxClient>(client)] {
        if (auto self = weak.lock()) self->SweepDeadlines();
      });
  return client;
}

MuxClient::~MuxClient() { Close(); }

void MuxClient::Close() {
  std::vector<Fired> fired;
  uint64_t ticker = 0;
  {
    MutexLock lock(mutex_);
    if (closed_) return;
    closed_ = true;
    ticker = ticker_id_;
    ticker_id_ = 0;
    ConnDeadLocked(&fired, UnavailableError("mux client closed"));
  }
  if (ticker != 0) {
    if (const auto reactor = reactor_.lock()) reactor->RemoveTicker(ticker);
  }
  Fire(fired);
}

bool MuxClient::connected() const {
  MutexLock lock(mutex_);
  return connected_;
}

size_t MuxClient::streams_in_flight() const {
  MutexLock lock(mutex_);
  return streams_.size();
}

Status MuxClient::StartStream(const std::string& function, rr::Buffer payload,
                              uint64_t token, Nanos transfer_deadline,
                              DoneFn done) {
  if (function.empty() || function.size() > kMaxMuxFunctionName) {
    return InvalidArgumentError("function name length invalid");
  }
  if (payload.size() > serde::kMaxFrameBytes || payload.size() > UINT32_MAX) {
    return InvalidArgumentError("payload exceeds the frame size cap");
  }
  if (done == nullptr) return InvalidArgumentError("null completion callback");
  // Captured on the caller's thread, while its dispatch span is active: the
  // agent-side spans join the SENDER's trace.
  const obs::SpanContext trace = obs::CurrentSpanContext();
  std::vector<Fired> fired;
  {
    MutexLock lock(mutex_);
    if (closed_) return FailedPreconditionError("mux client closed");
    if (!connected_) {
      // Dial with the lock RELEASED: the reactor's OnEvent/SweepDeadlines
      // contend this mutex, so a blocking connect to a slow or unreachable
      // host held under it would stall the shared loop — freezing every
      // other agent's streams for the duration. A concurrent caller may
      // connect first while we dial; the loser's socket is simply dropped
      // (the agent sees a preamble followed by EOF and tears it down).
      lock.unlock();
      Result<osal::Connection> conn = Dial();
      lock.lock();
      if (closed_) return FailedPreconditionError("mux client closed");
      if (!conn.ok()) return conn.status();
      if (!connected_) RR_RETURN_IF_ERROR(InstallLocked(std::move(*conn)));
    }

    const uint32_t id = next_stream_id_++;
    const bool traced = trace.trace_id != 0;
    const size_t open_len = 18 + function.size() + (traced ? 16 : 0);
    Bytes open(kMuxFrameHeaderBytes + open_len);
    MuxFrameHeader h;
    h.type = kMuxFrameOpen;
    h.flags = traced ? kMuxFlagTrace : 0;
    h.stream_id = id;
    h.payload_length = static_cast<uint32_t>(open_len);
    EncodeMuxFrameHeader(h, open.data());
    uint8_t* p = open.data() + kMuxFrameHeaderBytes;
    StoreLE<uint64_t>(p, token);
    StoreLE<uint64_t>(p + 8, payload.size());
    StoreLE<uint16_t>(p + 16, static_cast<uint16_t>(function.size()));
    std::memcpy(p + 18, function.data(), function.size());
    if (traced) {
      StoreLE<uint64_t>(p + 18 + function.size(), trace.trace_id);
      StoreLE<uint64_t>(p + 18 + function.size() + 8, trace.span_id);
    }

    Stream s;
    const bool has_body = !payload.empty();
    s.payload = std::move(payload);
    s.progress_budget = transfer_deadline;
    s.last_progress = Now();
    s.done = std::move(done);
    streams_.emplace(id, std::move(s));
    control_.push_back(std::move(open));
    if (has_body) ring_.push_back(id);
    if (resilience::FaultInjector::Instance().ShouldFire(
            resilience::FaultSite::kMuxConnReset)) {
      // Chaos hook: a mid-flight RST right after this stream staged — every
      // stream sharing the connection fails kUnavailable, exactly the blast
      // radius a real peer reset delivers.
      ConnDeadLocked(&fired,
                     UnavailableError("fault injection: connection reset"));
    } else if (!PumpLocked()) {
      ConnDeadLocked(&fired, UnavailableError("mux agent connection lost"));
    }
  }
  Fire(fired);
  return Status::Ok();
}

// Blocking connect + preamble. Touches only immutable members (host_,
// port_): callable WITHOUT the lock, so a slow connect never blocks the
// reactor threads that contend mutex_.
Result<osal::Connection> MuxClient::Dial() {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, osal::TcpConnect(host_, port_));
  conn.SetNoDelay(true);
  uint8_t preamble[kMuxPreambleBytes];
  StoreLE<uint16_t>(preamble, kMuxPreambleMagic);
  preamble[2] = kMuxVersion;
  preamble[3] = 0;
  RR_RETURN_IF_ERROR(conn.Send(ByteSpan(preamble, kMuxPreambleBytes)));
  RR_RETURN_IF_ERROR(osal::SetNonBlocking(conn.fd(), true));
  return conn;
}

Status MuxClient::InstallLocked(osal::Connection conn) {
  fd_ = conn.TakeFd();
  ++conn_gen_;
  rneed_ = kMuxFrameHeaderBytes;
  rgot_ = 0;
  rheader_pending_ = false;
  out_ = OutFrame{};
  const auto reactor = reactor_.lock();
  if (reactor == nullptr) {
    fd_.Reset();
    return FailedPreconditionError("mux client reactor is gone");
  }
  const Status added = reactor->Add(
      fd_.get(), osal::Epoll::kReadable,
      [weak = weak_from_this(), gen = conn_gen_](uint32_t events) {
        if (auto self = weak.lock()) self->OnEvent(gen, events);
      });
  if (!added.ok()) {
    fd_.Reset();
    return added;
  }
  connected_ = true;
  writable_armed_ = false;
  return Status::Ok();
}

// rr-lint: reactor-thread
void MuxClient::OnEvent(uint64_t gen, uint32_t events) {
  std::vector<Fired> fired;
  {
    MutexLock lock(mutex_);
    if (!connected_ || gen != conn_gen_) return;  // stale: past a reconnect
    bool alive = true;
    if (events & osal::Epoll::kError) {
      alive = false;
    } else {
      if (events & osal::Epoll::kReadable) alive = ReadLocked(&fired);
      // Window updates may have re-armed streams; flush regardless of which
      // readiness bit woke us.
      if (alive) alive = PumpLocked();
    }
    if (!alive) {
      ConnDeadLocked(&fired, UnavailableError("mux agent connection lost"));
    }
  }
  Fire(fired);
}

bool MuxClient::ReadLocked(std::vector<Fired>* fired) {
  uint8_t buf[64 * 1024];
  while (true) {
    // Never blocks (MSG_DONTWAIT).  rr-lint: allow(reactor-blocking)
    const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), MSG_DONTWAIT);
    if (n == 0) return false;  // agent closed (idle sweep or shutdown)
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    ByteSpan data(buf, static_cast<size_t>(n));
    while (!data.empty()) {
      const size_t take = std::min<size_t>(data.size(), rneed_ - rgot_);
      std::memcpy(racc_ + rgot_, data.data(), take);
      rgot_ += take;
      data = data.subspan(take);
      if (rgot_ < rneed_) break;
      if (!HandleFrameLocked(fired)) return false;
    }
    if (static_cast<size_t>(n) < sizeof(buf)) return true;
  }
}

bool MuxClient::HandleFrameLocked(std::vector<Fired>* fired) {
  if (!rheader_pending_) {
    const MuxFrameHeader h = DecodeMuxFrameHeader(racc_);
    const Status valid = ValidateMuxFrameHeader(h, /*receiver_is_agent=*/false);
    if (!valid.ok()) {
      RR_LOG(Warning) << "mux client: " << valid;
      return false;
    }
    if (h.type == kMuxFrameWindowUpdate) {
      const auto it = streams_.find(h.stream_id);
      if (it != streams_.end()) {  // unknown stream: completion raced it
        Stream& s = it->second;
        s.window += h.aux;
        s.last_progress = Now();
        if (s.stalled && s.offset < s.payload.size() && s.window > 0) {
          s.stalled = false;
          ring_.push_back(h.stream_id);
        }
      }
      rneed_ = kMuxFrameHeaderBytes;
      rgot_ = 0;
      return true;
    }
    // kCompletion (the only other sender-bound type).
    if (static_cast<uint8_t>(h.aux) != h.aux ||
        static_cast<uint8_t>(h.aux) > kMaxWireStatusCode) {
      RR_LOG(Warning) << "mux client: implausible completion status code";
      return false;
    }
    if (h.payload_length > 0) {
      rh_ = h;
      rheader_pending_ = true;
      rneed_ = h.payload_length;
      rgot_ = 0;
      return true;
    }
    rh_ = h;
  }
  // A complete completion frame: header in rh_, detail (if any) in racc_.
  const StatusCode code = static_cast<StatusCode>(rh_.aux);
  std::string detail;
  if (rheader_pending_) {
    detail.assign(reinterpret_cast<const char*>(racc_), rneed_);
  }
  rheader_pending_ = false;
  rneed_ = kMuxFrameHeaderBytes;
  rgot_ = 0;
  const auto it = streams_.find(rh_.stream_id);
  if (it == streams_.end()) return true;  // tolerated: raced our cancel
  Fired done{std::move(it->second.done),
             code == StatusCode::kOk
                 ? Status::Ok()
                 : Status(code, detail.empty() ? "remote invocation failed"
                                               : detail)};
  streams_.erase(it);
  fired->push_back(std::move(done));
  return true;
}

bool MuxClient::PumpLocked() {
  while (true) {
    if (!out_.active) {
      if (!StageNextLocked()) {
        SetWritableLocked(false);
        return true;
      }
    }
    while (out_.part < out_.parts.size()) {
      const ByteSpan p = out_.parts[out_.part];
      if (out_.part_offset == p.size()) {
        ++out_.part;
        out_.part_offset = 0;
        continue;
      }
      const ssize_t n =
          ::send(fd_.get(), p.data() + out_.part_offset,
                 p.size() - out_.part_offset, MSG_DONTWAIT | MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          SetWritableLocked(true);
          return true;
        }
        return false;
      }
      out_.part_offset += static_cast<size_t>(n);
    }
    out_ = OutFrame{};  // frame fully flushed
  }
}

bool MuxClient::StageNextLocked() {
  if (!control_.empty()) {
    out_.active = true;
    out_.control = std::move(control_.front());
    control_.pop_front();
    out_.body_ref = rr::Buffer();
    out_.parts.assign(1, ByteSpan(out_.control.data(), out_.control.size()));
    out_.part = 0;
    out_.part_offset = 0;
    return true;
  }
  // Fair round-robin: one quantum per turn per stream.
  while (!ring_.empty()) {
    const uint32_t id = ring_.front();
    ring_.pop_front();
    const auto it = streams_.find(id);
    if (it == streams_.end()) continue;  // completed or cancelled meanwhile
    Stream& s = it->second;
    if (s.offset >= s.payload.size()) continue;
    if (s.window == 0) {
      if (!s.stalled) {
        s.stalled = true;
        StreamStalls().Inc();
      }
      continue;
    }
    const size_t n = std::min(
        {kMuxMaxChunk, s.payload.size() - s.offset, s.window});
    MuxFrameHeader h;
    h.type = kMuxFrameData;
    h.stream_id = id;
    h.payload_length = static_cast<uint32_t>(n);
    EncodeMuxFrameHeader(h, out_.header);
    out_.active = true;
    out_.control.clear();
    // The frame references the payload's chunks directly (no byte copy);
    // body_ref keeps that storage alive even if the stream dies mid-write.
    out_.body_ref = s.payload.Slice(s.offset, n);
    out_.parts.clear();
    out_.parts.emplace_back(out_.header, kMuxFrameHeaderBytes);
    for (size_t i = 0; i < out_.body_ref.chunk_count(); ++i) {
      out_.parts.push_back(out_.body_ref.chunk(i));
    }
    out_.part = 0;
    out_.part_offset = 0;
    s.offset += n;
    s.window -= n;
    s.last_progress = Now();
    if (s.offset < s.payload.size()) {
      if (s.window > 0) {
        ring_.push_back(id);
      } else if (!s.stalled) {
        s.stalled = true;
        StreamStalls().Inc();
      }
    }
    return true;
  }
  return false;
}

void MuxClient::SetWritableLocked(bool writable) {
  if (!connected_ || writable_armed_ == writable) return;
  writable_armed_ = writable;
  if (const auto reactor = reactor_.lock()) {
    // Best-effort: Modify only fails if the fd was already dropped from the
    // epoll set, and connection teardown handles that path.
    (void)reactor->Modify(fd_.get(),
                          osal::Epoll::kReadable |
                              (writable ? osal::Epoll::kWritable : 0u));
  }
}

// Body-drain progress deadline: a stream still sending must have moved
// (bytes out, window granted, or completed) within its budget. Streams whose
// body is fully sent are exempt — the remote invocation runs under the
// caller's own backstop, not ours.
void MuxClient::SweepDeadlines() {
  std::vector<Fired> fired;
  {
    MutexLock lock(mutex_);
    if (!connected_) return;
    const TimePoint now = Now();
    std::vector<uint32_t> expired;
    for (const auto& [id, s] : streams_) {
      if (s.offset < s.payload.size() && s.progress_budget > Nanos{0} &&
          now - s.last_progress > s.progress_budget) {
        expired.push_back(id);
      }
    }
    for (const uint32_t id : expired) {
      const auto it = streams_.find(id);
      fired.emplace_back(
          std::move(it->second.done),
          DeadlineExceededError(
              "stream made no progress within the transfer deadline "
              "(flow-control starved or agent wedged)"));
      streams_.erase(it);
      control_.push_back(EncodeCancel(id));
    }
    if (!expired.empty() && !PumpLocked()) {
      ConnDeadLocked(&fired, UnavailableError("mux agent connection lost"));
    }
  }
  Fire(fired);
}

void MuxClient::ConnDeadLocked(std::vector<Fired>* fired,
                               const Status& reason) {
  for (auto& [id, s] : streams_) {
    fired->emplace_back(std::move(s.done), reason);
  }
  streams_.clear();
  ring_.clear();
  control_.clear();
  out_ = OutFrame{};
  if (connected_) {
    // A dead lock() means the reactor is tearing down; closing the fd below
    // removes it from the epoll set anyway.
    if (const auto reactor = reactor_.lock()) (void)reactor->Remove(fd_.get());
    connected_ = false;
    writable_armed_ = false;
  }
  fd_.Reset();
}

void MuxClient::Fire(std::vector<Fired>& fired) {
  for (auto& [done, status] : fired) {
    if (done) done(status);
  }
}

}  // namespace rr::core
