#include "core/data_access.h"

namespace rr::core {

Result<uint32_t> DataAccess::allocate_memory(uint32_t len) {
  RR_ASSIGN_OR_RETURN(const uint32_t address, sandbox_->AllocateMemory(len));
  regions_[address] = MemoryRegion{address, len};
  return address;
}

Status DataAccess::deallocate_memory(uint32_t address) {
  const auto it = regions_.find(address);
  if (it == regions_.end()) {
    return PermissionDeniedError("deallocate of unregistered region at " +
                                 std::to_string(address));
  }
  if (staged_output_.has_value() && staged_output_->address == address) {
    staged_output_.reset();
  }
  regions_.erase(it);
  return sandbox_->DeallocateMemory(address);
}

Result<Bytes> DataAccess::read_memory_wasm(uint32_t address, uint32_t len) {
  if (!IsRegistered(address, len)) {
    return PermissionDeniedError("read_memory_wasm outside registered regions");
  }
  Bytes out(len);
  RR_RETURN_IF_ERROR(sandbox_->ReadMemoryHost(address, out));
  return out;
}

Result<MemoryRegion> DataAccess::locate_memory_region(ByteSpan data) {
  // The span must alias this sandbox's linear memory.
  RR_ASSIGN_OR_RETURN(const ByteSpan whole,
                      sandbox_->SliceMemory(0, static_cast<uint32_t>(
                                                   sandbox_->instance()
                                                       .memory()
                                                       ->byte_size())));
  const uint8_t* base = whole.data();
  if (data.data() < base || data.data() + data.size() > base + whole.size()) {
    return InvalidArgumentError(
        "locate_memory_region: data does not alias this function's memory");
  }
  MemoryRegion region;
  region.address = static_cast<uint32_t>(data.data() - base);
  region.length = static_cast<uint32_t>(data.size());
  RR_RETURN_IF_ERROR(RegisterRegion(region));
  return region;
}

Status DataAccess::send_to_host(uint32_t address, uint32_t len) {
  if (!IsRegistered(address, len)) {
    return PermissionDeniedError("send_to_host of unregistered region");
  }
  staged_output_ = MemoryRegion{address, len};
  return Status::Ok();
}

std::optional<MemoryRegion> DataAccess::TakeStagedOutput() {
  std::optional<MemoryRegion> out = staged_output_;
  staged_output_.reset();
  return out;
}

Result<ByteSpan> DataAccess::read_memory_host(uint32_t address, uint32_t len) {
  if (!IsRegistered(address, len)) {
    return PermissionDeniedError(
        "read_memory_host: region not pre-registered (shim access denied)");
  }
  return sandbox_->SliceMemory(address, len);
}

Status DataAccess::write_memory_host(ByteSpan data, uint32_t address) {
  if (!IsRegistered(address, static_cast<uint32_t>(data.size()))) {
    return PermissionDeniedError(
        "write_memory_host: region not pre-registered (shim access denied)");
  }
  return sandbox_->WriteMemoryHost(address, data);
}

Status DataAccess::write_memory_host(const rr::BufferView& data,
                                     uint32_t address) {
  if (!IsRegistered(address, static_cast<uint32_t>(data.size()))) {
    return PermissionDeniedError(
        "write_memory_host: region not pre-registered (shim access denied)");
  }
  uint32_t offset = 0;
  for (size_t i = 0; i < data.segment_count(); ++i) {
    const ByteSpan segment = data.segment(i);
    RR_RETURN_IF_ERROR(sandbox_->WriteMemoryHost(address + offset, segment));
    offset += static_cast<uint32_t>(segment.size());
  }
  return Status::Ok();
}

Status DataAccess::RegisterRegion(MemoryRegion region) {
  if (!sandbox_->instance().memory()->InBounds(region.address, region.length)) {
    return OutOfRangeError("region exceeds linear memory bounds");
  }
  // Merge-tolerant: re-registering an identical or nested region is a no-op.
  if (IsRegistered(region.address, region.length)) return Status::Ok();
  regions_[region.address] = region;
  return Status::Ok();
}

bool DataAccess::IsRegistered(uint32_t address, uint32_t len) const {
  return FindCovering(address, len) != nullptr;
}

const MemoryRegion* DataAccess::FindCovering(uint32_t address,
                                             uint32_t len) const {
  // Candidate: the region with the greatest start <= address.
  auto it = regions_.upper_bound(address);
  if (it == regions_.begin()) return nullptr;
  --it;
  const MemoryRegion& region = it->second;
  const uint64_t end = static_cast<uint64_t>(address) + len;
  if (address >= region.address &&
      end <= static_cast<uint64_t>(region.address) + region.length) {
    return &region;
  }
  return nullptr;
}

}  // namespace rr::core
