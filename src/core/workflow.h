// Workflow registry: one workflow's function endpoints plus the HopTable of
// established hops between them.
//
// WorkflowManager is the control-plane substrate the async façade
// (api::Runtime) executes over — chains and DAG-shaped workflows both run
// through Runtime::Submit on this registry and hop cache. (The former
// synchronous RunChain entry is gone; Submit(ChainSpec, input) is the
// replacement.)
#pragma once

#include <map>
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include <string>
#include <vector>

#include "core/endpoint.h"
#include "core/hop_table.h"

namespace rr::core {

// WorkflowManager owns no sandboxes — shims are registered by the platform
// integration — and is the piece an orchestrator (Knative/OpenFaaS/...)
// would drive.
//
// Registration is a control-plane operation; Register/Unregister must not
// race a run that uses the affected endpoint. Lookups and transfers from
// concurrent invocations are safe.
class WorkflowManager {
 public:
  explicit WorkflowManager(std::string workflow) : workflow_(std::move(workflow)) {}

  Status Register(Endpoint endpoint);

  // Removes a function and evicts every cached hop it participates in, so a
  // replacement shim registered under the same name starts from fresh
  // channels instead of inheriting connections to the dead sandbox.
  Status Unregister(const std::string& name);

  Result<Endpoint*> Find(const std::string& name);

  // The mode that a transfer will use between two registered functions.
  Result<TransferMode> ModeBetween(const std::string& source,
                                   const std::string& target);

  // The shared cache of established hops (exposed so DAG executors drive the
  // same connections chains do).
  HopTable& hops() { return hops_; }

  const std::string& workflow() const { return workflow_; }

 private:
  std::string workflow_;
  Mutex mutex_;  // map nodes themselves are address-stable once inserted
  std::map<std::string, Endpoint> endpoints_ RR_GUARDED_BY(mutex_);
  HopTable hops_;
};

}  // namespace rr::core
