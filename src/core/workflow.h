// Workflow registry and communication-mode selection.
//
// "Roadrunner optimizes communication regardless of the scheduler's
// decisions" (§2.2): the orchestrator places functions wherever it likes;
// given the resulting placement, the shim picks the cheapest mode —
// user space within one VM, kernel space within one host, network across
// hosts (§3.2.3, §7 Benefits and Trade-Offs).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/kernel_channel.h"
#include "core/network_channel.h"
#include "core/shim.h"
#include "core/user_channel.h"

namespace rr::core {

enum class TransferMode { kUserSpace, kKernelSpace, kNetwork };

std::string_view TransferModeName(TransferMode mode);

// Where a function instance lives, as the orchestrator reports it.
struct Location {
  std::string node;  // host identity
  std::string vm;    // Wasm VM identity within the node ("" = dedicated VM)

  bool SameVm(const Location& other) const {
    return node == other.node && !vm.empty() && vm == other.vm;
  }
  bool SameNode(const Location& other) const { return node == other.node; }
};

// Picks the cheapest mode the placement allows (Table of §7 trade-offs).
TransferMode SelectMode(const Location& source, const Location& target);

// A registered function instance: its shim plus placement and (for remote
// placements) the ingress address of its node.
struct Endpoint {
  Shim* shim = nullptr;
  Location location;
  std::string host = "127.0.0.1";  // network-mode ingress
  uint16_t port = 0;
};

// WorkflowManager executes chains by selecting a mode per hop. It owns no
// sandboxes — shims are registered by the platform integration — and is the
// piece an orchestrator (Knative/OpenFaaS/...) would drive.
class WorkflowManager {
 public:
  explicit WorkflowManager(std::string workflow) : workflow_(std::move(workflow)) {}

  Status Register(Endpoint endpoint);

  Result<Endpoint*> Find(const std::string& name);

  // Delivers `input` to the first function, then forwards each function's
  // output to the next via the selected mode, returning the final output
  // bytes. Kernel/network hops connect lazily and are cached per pair.
  Result<Bytes> RunChain(const std::vector<std::string>& names, ByteSpan input);

  // The mode that RunChain will use between two registered functions.
  Result<TransferMode> ModeBetween(const std::string& source,
                                   const std::string& target);

 private:
  // One cached duplex hop between two co-located or remote functions.
  struct KernelHop {
    KernelChannelSender sender;
    KernelChannelReceiver receiver;
  };
  struct NetworkHop {
    NetworkChannelSender sender;
    NetworkChannelReceiver receiver;
  };

  Result<InvokeOutcome> ForwardAndInvoke(Endpoint& source,
                                         const MemoryRegion& region,
                                         Endpoint& target);

  std::string workflow_;
  std::map<std::string, Endpoint> endpoints_;
  std::map<std::pair<std::string, std::string>, KernelHop> kernel_hops_;
  std::map<std::pair<std::string, std::string>, NetworkHop> network_hops_;
};

}  // namespace rr::core
