// Workflow registry and linear-chain execution.
//
// WorkflowManager owns the registry of one workflow's function endpoints and
// the HopTable of established hops between them. It is the substrate the
// async façade (api::Runtime) executes over; DAG-shaped workflows run over
// the same registry and hop cache via dag::DagExecutor (src/dag/executor.h).
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/endpoint.h"
#include "core/hop_table.h"

namespace rr::core {

// WorkflowManager executes chains by selecting a mode per hop. It owns no
// sandboxes — shims are registered by the platform integration — and is the
// piece an orchestrator (Knative/OpenFaaS/...) would drive.
//
// Registration is a control-plane operation; Register/Unregister must not
// race a run that uses the affected endpoint. Lookups and transfers from
// concurrent invocations are safe.
class WorkflowManager {
 public:
  explicit WorkflowManager(std::string workflow) : workflow_(std::move(workflow)) {}

  Status Register(Endpoint endpoint);

  // Removes a function and evicts every cached hop it participates in, so a
  // replacement shim registered under the same name starts from fresh
  // channels instead of inheriting connections to the dead sandbox.
  Status Unregister(const std::string& name);

  Result<Endpoint*> Find(const std::string& name);

  // DEPRECATED(one release): synchronous, one-run-at-a-time chain execution.
  // Use api::Runtime::Submit(ChainSpec, input), which runs the same hops
  // asynchronously with many invocations in flight. Delivers `input` to the
  // first function, then forwards each function's output to the next via the
  // selected mode, returning the final output bytes.
  Result<Bytes> RunChain(const std::vector<std::string>& names, ByteSpan input);

  // The mode that a transfer will use between two registered functions.
  Result<TransferMode> ModeBetween(const std::string& source,
                                   const std::string& target);

  // The shared cache of established hops (exposed so DAG executors drive the
  // same connections chains do).
  HopTable& hops() { return hops_; }

  const std::string& workflow() const { return workflow_; }

 private:
  std::string workflow_;
  std::mutex mutex_;  // guards endpoints_ (map nodes themselves are stable)
  std::map<std::string, Endpoint> endpoints_;
  HopTable hops_;
};

}  // namespace rr::core
