// NodeAgent: the per-node ingress for network-mode transfers.
//
// The paper's deployment runs one shim per function; transfers from another
// node arrive at the node's address and must reach the right function's
// shim. NodeAgent owns that ingress: it accepts connections, reads a small
// routing preamble (target function name), and then hands the connection to
// the target shim's NetworkChannelReceiver, which performs the Algorithm-1
// receive (allocate in the VM, splice the payload in, invoke).
//
// This completes WorkflowManager's remote path: register remote functions
// with the target node's agent address and transfers route themselves.
//
// Instance pools: each registered function is backed by a ShimPool, and
// every received frame leases its own instance for the receive+invoke — so
// concurrent connections into one function no longer serialize whole
// transfers behind a single VM, they fan out across the pool.
//
// Production shape (the failure-hardened plane):
//  * The accept loop survives transient errors — EMFILE/ENFILE under fd
//    pressure, ECONNABORTED from a peer that gave up in the queue — by
//    backing off and retrying; it exits only on shutdown or a hard listener
//    error.
//  * Finished connection threads are reaped as the agent runs (each worker
//    announces completion; the accept loop joins the announced ones before
//    the next accept) instead of accumulating one zombie per connection
//    until Shutdown.
//  * A frame that cannot be served — the function's pool is exhausted —
//    is drained and refused with a typed error ack (kResourceExhausted) on a
//    channel that stays alive, so one saturated function degrades gracefully
//    instead of killing every sender's connection.
//  * Body receives are deadline-bounded (AgentOptions::transfer_deadline):
//    a sender that dies mid-body frees the worker within the bound. The
//    header wait stays unbounded by design — an idle channel parks there.
//  * No receive/invoke failure leaks a placed guest region (RegionGuard).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/network_channel.h"
#include "core/shim.h"
#include "core/shim_pool.h"

namespace rr::core {

// True for accept(2) failures an ingress should ride out (fd exhaustion,
// aborted handshakes) rather than die on. Exposed for tests.
bool IsTransientAcceptError(const Status& status);

class NodeAgent {
 public:
  struct Options {
    // Bounds one frame's body receive (and its ack write). The sender-side
    // transfer deadline is the other half of the bound; together they
    // guarantee a wedged peer frees the worker. Non-positive = unbounded.
    Nanos transfer_deadline = std::chrono::seconds(30);
  };

  // Called after a payload has been delivered and the function invoked. The
  // outcome's output region lives in `instance` — the pool lease the agent
  // acquired for this frame; the consumer keeps it until the output is
  // egressed or released (dropping it returns the instance to the pool).
  // `token` is the frame's correlation token: the consumer matches the
  // completion to the exact transfer that sent it (0 = sender did not track
  // the transfer).
  using DeliveryCallback =
      std::function<void(const std::string& function, InvokeOutcome outcome,
                         uint64_t token, ShimLease instance)>;

  // Binds the node ingress on 127.0.0.1:port (0 = ephemeral).
  static Result<std::unique_ptr<NodeAgent>> Start(uint16_t port);
  static Result<std::unique_ptr<NodeAgent>> Start(uint16_t port,
                                                  Options options);

  ~NodeAgent();

  NodeAgent(const NodeAgent&) = delete;
  NodeAgent& operator=(const NodeAgent&) = delete;

  uint16_t port() const { return listener_.port(); }

  // Makes a local function reachable from remote nodes. The pool overload
  // shares ownership; the bare-shim overload adopts the shim as a pool of 1
  // (memoized — a WorkflowManager registration of the same shim shares it),
  // and the shim must outlive the agent (or be unregistered first).
  Status RegisterFunction(std::shared_ptr<ShimPool> pool,
                          DeliveryCallback on_delivery = {});
  Status RegisterFunction(Shim* shim, DeliveryCallback on_delivery = {});
  Status UnregisterFunction(const std::string& name);

  uint64_t transfers_completed() const { return transfers_completed_.load(); }

  // Frames refused with a typed error ack on a live channel (pool
  // exhausted): each one failed exactly one sender-side transfer.
  uint64_t transfers_refused() const { return transfers_refused_.load(); }

  // Connection threads currently tracked (serving or awaiting reap).
  // Observability for the reaping behavior; not a synchronization point.
  size_t live_workers() const;

  void Shutdown();

 private:
  NodeAgent(osal::TcpListener listener, Options options)
      : listener_(std::move(listener)), options_(options) {}

  void AcceptLoop();
  void ServeConnection(osal::Connection conn);

  // Joins every worker whose ServeConnection has announced completion.
  // Called from the accept loop between accepts and from Shutdown.
  void ReapFinished();

  struct Entry {
    std::shared_ptr<ShimPool> pool;
    DeliveryCallback on_delivery;
  };

  osal::TcpListener listener_;
  const Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> functions_;
  // Accepted-connection fds, tracked so Shutdown can unblock workers parked
  // in a receive (a peer that never closes must not wedge teardown).
  std::set<int> active_fds_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> transfers_completed_{0};
  std::atomic<uint64_t> transfers_refused_{0};
  std::thread accept_thread_;
  // Workers keyed by id; a worker pushes its id to finished_ when its
  // connection ends, and ReapFinished joins+erases those entries.
  std::map<uint64_t, std::thread> workers_;
  std::vector<uint64_t> finished_;
  uint64_t next_worker_id_ = 0;
};

// Sender-side counterpart: connects to a remote NodeAgent (optionally
// through a shaped link) and opens a channel to a named function there.
Result<NetworkChannelSender> ConnectToRemoteFunction(
    const std::string& host, uint16_t agent_port, const std::string& function);

}  // namespace rr::core
