// NodeAgent: the per-node ingress for network-mode transfers.
//
// The paper's deployment runs one shim per function; transfers from another
// node arrive at the node's address and must reach the right function's
// shim. NodeAgent owns that ingress. Two implementations share the public
// surface (Options::ingress):
//
//  * kReactor (default): the event-driven plane. One epoll reactor thread
//    per core-shard multiplexes every connection — no thread per connection,
//    no blocking header park. Connections are round-robined across shards at
//    accept; each shard's loop stages frame bodies as bytes arrive and hands
//    completed frames to a fixed invoke-worker pool (the only place Wasm
//    runs), so ten thousand idle or trickling peers cost table entries, not
//    threads. Both wire dialects are served and distinguished by the first
//    two preamble bytes:
//      - the legacy sequential dialect (network_channel.h): routing preamble,
//        16/32-byte frame headers, status-bearing delivery acks — existing
//        NetworkChannelSender peers work unchanged;
//      - the multiplexed dialect (mux_protocol.h): many concurrent streams
//        per connection, interleaved chunk frames, per-stream flow-control
//        windows, and completion frames that carry the *invocation* outcome
//        back to the sender (a remote handler failure fails the sender's
//        edge immediately instead of waiting out its delivery deadline).
//    Connections idle past Options::idle_timeout with nothing in flight are
//    swept (the PR 5 "header park stays unbounded" contract is retired);
//    senders re-establish transparently on their next dispatch.
//  * kThreaded: the historical thread-per-connection plane, kept so the
//    fault-injection matrix can run against both implementations. Accept
//    survives transient errors, finished workers are reaped as the agent
//    runs, pool exhaustion refuses frames with a typed error ack, body
//    receives are deadline-bounded, and no failure leaks a placed region.
//
// Instance pools: each registered function is backed by a ShimPool; every
// received frame leases its own instance for the receive+invoke, so
// concurrent transfers into one function fan out across the pool.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/network_channel.h"
#include "core/shim.h"
#include "core/shim_pool.h"

namespace rr::core {

// True for accept(2) failures an ingress should ride out (fd exhaustion,
// aborted handshakes) rather than die on. Exposed for tests.
bool IsTransientAcceptError(const Status& status);

class NodeAgent {
 public:
  struct Options {
    // Bounds one frame's body receive (and its ack write) on both planes; on
    // the reactor plane it also bounds how long a stream may sit mid-body
    // without progress before it is dropped. The sender-side transfer
    // deadline is the other half of the bound; together they guarantee a
    // wedged peer frees the worker. Non-positive = unbounded.
    // NOTE: first member — existing call sites aggregate-initialize
    // Options{deadline}.
    Nanos transfer_deadline = std::chrono::seconds(30);

    enum class Ingress { kReactor, kThreaded };
    Ingress ingress = Ingress::kReactor;

    // Reactor plane shape. 0 = pick from hardware concurrency. Shards are
    // epoll loops (connections round-robin across them); invoke workers are
    // the only threads that run Wasm. Total agent threads = shards +
    // invoke_workers, independent of connection or stream count.
    size_t shards = 0;
    size_t invoke_workers = 0;

    // Reactor plane: connections with no frame mid-receive, no stream open,
    // and no invoke in flight for this long are closed. Senders reconnect
    // transparently on their next dispatch. Non-positive = never swept.
    Nanos idle_timeout = std::chrono::seconds(60);

    // Mux admission caps, per connection (0 = the build default, in
    // parentheses). An open frame past either cap is refused with a typed
    // kResourceExhausted completion — stream-fatal, never connection-fatal.
    // `max_conn_staged_bytes` bounds COMMITTED body bytes: window credit
    // granted but unreceived, bytes staged, and bytes in invoke — a hard
    // heap bound, enforced by treating data beyond a stream's granted
    // window as a flow-control violation (connection-fatal).
    size_t max_conn_streams = 0;       // (4096)
    size_t max_conn_staged_bytes = 0;  // (128 MiB)
  };

  // Called after a payload has been delivered and the function invoked. The
  // outcome's output region lives in `instance` — the pool lease the agent
  // acquired for this frame; the consumer keeps it until the output is
  // egressed or released (dropping it returns the instance to the pool).
  // `token` is the frame's correlation token: the consumer matches the
  // completion to the exact transfer that sent it (0 = sender did not track
  // the transfer).
  using DeliveryCallback =
      std::function<void(const std::string& function, InvokeOutcome outcome,
                         uint64_t token, ShimLease instance)>;

  // Binds the node ingress on 127.0.0.1:port (0 = ephemeral).
  static Result<std::unique_ptr<NodeAgent>> Start(uint16_t port);
  static Result<std::unique_ptr<NodeAgent>> Start(uint16_t port,
                                                  Options options);

  ~NodeAgent();

  NodeAgent(const NodeAgent&) = delete;
  NodeAgent& operator=(const NodeAgent&) = delete;

  uint16_t port() const { return listener_.port(); }

  // Makes a local function reachable from remote nodes. The pool overload
  // shares ownership; the bare-shim overload adopts the shim as a pool of 1
  // (memoized — a WorkflowManager registration of the same shim shares it),
  // and the shim must outlive the agent (or be unregistered first).
  Status RegisterFunction(std::shared_ptr<ShimPool> pool,
                          DeliveryCallback on_delivery = {});
  Status RegisterFunction(Shim* shim, DeliveryCallback on_delivery = {});
  Status UnregisterFunction(const std::string& name);

  uint64_t transfers_completed() const { return transfers_completed_.load(); }

  // Frames refused with a typed error (pool exhausted): an error ack on the
  // legacy dialect, an error completion frame on the mux dialect. Each one
  // failed exactly one sender-side transfer.
  uint64_t transfers_refused() const { return transfers_refused_.load(); }

  // Connection threads currently tracked (threaded plane only; the reactor
  // plane has no per-connection threads, by design).
  size_t live_workers() const;

  // Connections currently served (either plane). Observability for the
  // idle-sweep tests.
  size_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

  void Shutdown();

 private:
  struct ReactorPlane;
  friend struct ReactorPlane;

  // Out-of-line: ReactorPlane is incomplete here.
  NodeAgent(osal::TcpListener listener, Options options);

  // --- threaded plane ---
  void AcceptLoop();
  void ServeConnection(osal::Connection conn);

  // Joins every worker whose ServeConnection has announced completion.
  // Called from the accept loop between accepts and from Shutdown.
  void ReapFinished();

  struct Entry {
    std::shared_ptr<ShimPool> pool;
    DeliveryCallback on_delivery;
  };

  osal::TcpListener listener_;
  const Options options_;
  mutable Mutex mutex_;
  std::map<std::string, Entry> functions_ RR_GUARDED_BY(mutex_);
  // Accepted-connection fds, tracked so Shutdown can unblock workers parked
  // in a receive (a peer that never closes must not wedge teardown).
  std::set<int> active_fds_ RR_GUARDED_BY(mutex_);
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> transfers_completed_{0};
  std::atomic<uint64_t> transfers_refused_{0};
  std::atomic<size_t> active_connections_{0};
  std::thread accept_thread_;
  // Workers keyed by id; a worker pushes its id to finished_ when its
  // connection ends, and ReapFinished joins+erases those entries.
  std::map<uint64_t, std::thread> workers_ RR_GUARDED_BY(mutex_);
  std::vector<uint64_t> finished_ RR_GUARDED_BY(mutex_);
  uint64_t next_worker_id_ RR_GUARDED_BY(mutex_) = 0;

  // --- reactor plane ---
  std::unique_ptr<ReactorPlane> reactor_plane_;
};

// Sender-side counterpart for the legacy dialect: connects to a remote
// NodeAgent (optionally through a shaped link) and opens a sequential
// channel to a named function there. The mux dialect's counterpart is
// core::MuxClient (mux_client.h).
Result<NetworkChannelSender> ConnectToRemoteFunction(
    const std::string& host, uint16_t agent_port, const std::string& function);

}  // namespace rr::core
