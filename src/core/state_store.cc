#include "core/state_store.h"

namespace rr::core {

Status StateStore::CheckAccess(const Shim& shim) const {
  const runtime::FunctionSpec& spec = shim.spec();
  if (spec.workflow != workflow_ || spec.tenant != tenant_) {
    return PermissionDeniedError("state store access denied: function " +
                                 spec.name + " is outside workflow '" +
                                 workflow_ + "'/tenant '" + tenant_ + "'");
  }
  return Status::Ok();
}

Status StateStore::Put(Shim& owner, const std::string& key,
                       const MemoryRegion& region) {
  RR_RETURN_IF_ERROR(CheckAccess(owner));
  // Zero-copy view of the function's memory; one copy into the store.
  RR_ASSIGN_OR_RETURN(const ByteSpan view,
                      owner.data().read_memory_host(region.address,
                                                    region.length));
  return PutBytes(key, view);
}

Status StateStore::PutBytes(const std::string& key, ByteSpan value) {
  if (key.empty()) return InvalidArgumentError("empty state key");
  MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  const uint64_t replaced = it == entries_.end() ? 0 : it->second.size();
  if (bytes_stored_ - replaced + value.size() > options_.capacity_bytes) {
    return ResourceExhaustedError("state store capacity exceeded");
  }
  bytes_stored_ = bytes_stored_ - replaced + value.size();
  entries_[key] = Bytes(value.begin(), value.end());
  return Status::Ok();
}

Result<MemoryRegion> StateStore::Get(Shim& reader, const std::string& key) {
  RR_RETURN_IF_ERROR(CheckAccess(reader));
  Bytes value;
  {
    MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) return NotFoundError("no state for key: " + key);
    value = it->second;  // copy under lock; the write below re-enters guest
  }
  RR_ASSIGN_OR_RETURN(const MemoryRegion region,
                      reader.PrepareInput(static_cast<uint32_t>(value.size())));
  RR_RETURN_IF_ERROR(reader.data().write_memory_host(value, region.address));
  return region;
}

Result<Bytes> StateStore::GetBytes(const std::string& key) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return NotFoundError("no state for key: " + key);
  return it->second;
}

Status StateStore::Delete(const std::string& key) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return NotFoundError("no state for key: " + key);
  bytes_stored_ -= it->second.size();
  entries_.erase(it);
  return Status::Ok();
}

bool StateStore::Contains(const std::string& key) const {
  MutexLock lock(mutex_);
  return entries_.count(key) != 0;
}

size_t StateStore::entry_count() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

uint64_t StateStore::bytes_stored() const {
  MutexLock lock(mutex_);
  return bytes_stored_;
}

}  // namespace rr::core
