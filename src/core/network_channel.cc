#include "core/network_channel.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serde/framing.h"

namespace rr::core {

namespace {

obs::Counter& WireBytesSent() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_wire_bytes_sent_total", "Payload bytes sent over network channels");
  return *counter;
}

obs::Counter& WireBytesReceived() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_wire_bytes_received_total",
      "Payload bytes received over network channels");
  return *counter;
}

obs::Counter& WireFramesSent() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_wire_frames_sent_total", "Frames sent over network channels");
  return *counter;
}

obs::Counter& WireErrorAcks() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_wire_error_acks_total",
      "Non-OK delivery acks sent by channel receivers");
  return *counter;
}

obs::Counter& WireDeadlineExpiries() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_wire_deadline_expiries_total",
      "Transfers that hit their per-transfer deadline");
  return *counter;
}

obs::Counter& WireChannelKills() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_wire_channel_kills_total",
      "Sender channels killed by ShutdownWire (eviction or desync)");
  return *counter;
}

// Error-path counters only increment when something goes wrong; registering
// the families eagerly makes every scrape expose them at zero, so absence
// of errors and absence of instrumentation are distinguishable.
const bool g_wire_metrics_registered = [] {
  WireBytesSent();
  WireBytesReceived();
  WireFramesSent();
  WireErrorAcks();
  WireDeadlineExpiries();
  WireChannelKills();
  return true;
}();

// Terminates every network transfer: receiver -> sender, a status-bearing
// ack frame confirming the payload durably landed (or why it did not).
// Layout constants live in network_channel.h (shared with the reactor
// agent's legacy-dialect state machine).
constexpr uint8_t kAckMagic = kWireAckMagic;
constexpr size_t kAckHeaderBytes = kWireAckHeaderBytes;
constexpr size_t kMaxAckDetail = kWireMaxAckDetail;

constexpr uint8_t kMaxWireStatusCode =
    static_cast<uint8_t>(StatusCode::kTokenMismatch);

}  // namespace

Result<VirtualDataHose> VirtualDataHose::Create(size_t pipe_capacity) {
  RR_ASSIGN_OR_RETURN(osal::Pipe pipe, osal::Pipe::Create(pipe_capacity));
  return VirtualDataHose(std::move(pipe));
}

Status VirtualDataHose::SendThrough(int socket_fd, ByteSpan data,
                                    TimePoint deadline) {
  bytes_moved_ += data.size();
  if (use_splice_) {
    return osal::HoseSend(pipe_, socket_fd, data, deadline);
  }
  return osal::WriteAllDeadline(socket_fd, data, deadline);
}

Status VirtualDataHose::ReceiveThrough(int socket_fd, MutableByteSpan out,
                                       TimePoint deadline) {
  bytes_moved_ += out.size();
  if (use_splice_) {
    return osal::HoseReceive(pipe_, socket_fd, out, deadline);
  }
  return osal::ReadExactDeadline(socket_fd, out, deadline);
}

Result<NetworkChannelSender> NetworkChannelSender::Connect(
    const std::string& host, uint16_t port) {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, osal::TcpConnect(host, port));
  return FromConnection(std::move(conn));
}

Result<NetworkChannelSender> NetworkChannelSender::FromConnection(
    osal::Connection conn) {
  conn.SetNoDelay(true);
  RR_ASSIGN_OR_RETURN(VirtualDataHose hose, VirtualDataHose::Create());
  return NetworkChannelSender(std::move(conn), std::move(hose));
}

Status NetworkChannelSender::Send(Shim& source, const MemoryRegion& region,
                                  CopyMode mode, uint64_t token) {
  timing_ = {};
  if (mode == CopyMode::kDirectGuest) {
    RR_ASSIGN_OR_RETURN(const ByteSpan view, source.OutputView(region));
    const Stopwatch transfer_timer;
    RR_RETURN_IF_ERROR(SendBytes(view, token));
    timing_.transfer = transfer_timer.Elapsed();
    return Status::Ok();
  }
  // Paper path: shim reads the data out of the VM (Wasm VM I/O), then maps
  // the shim buffer's pages into the hose.
  Bytes staged(region.length);
  const Stopwatch io_timer;
  RR_RETURN_IF_ERROR(source.sandbox().ReadMemoryHost(region.address, staged));
  timing_.wasm_io = io_timer.Elapsed();
  const Stopwatch transfer_timer;
  RR_RETURN_IF_ERROR(SendBytes(staged, token));
  timing_.transfer = transfer_timer.Elapsed();
  return Status::Ok();
}

Status NetworkChannelSender::SendBytes(ByteSpan data, uint64_t token) {
  return SendBuffer(rr::BufferView(data), token);
}

Status NetworkChannelSender::SendBuffer(const rr::BufferView& payload,
                                        uint64_t token) {
  // Frame header first (16 bytes: length + correlation token), then the body
  // through the hose, chunk by chunk — the hose references each chunk's
  // pages, never copies or reassembles them. The sender must not reuse the
  // pages until the receiver confirms delivery: the protocol ends with the
  // receiver's status-bearing ack frame. (SIOCOUTQ draining is NOT
  // sufficient — on loopback the receive queue's skbs still reference the
  // spliced pages until the peer's read(2).) Every blocking wait is bounded
  // by the transfer deadline.
  const TimePoint deadline = osal::DeadlineAfter(transfer_deadline_);
  Status status = [&]() -> Status {
    // Header: 16 fixed bytes, plus the trace-context extension when the
    // sending thread is inside a span and tracing is on. The flag rides the
    // length field's (guaranteed-zero) high bit, so receivers that predate
    // the extension — and frames from senders with tracing off — stay wire
    // compatible.
    uint8_t header[32];
    size_t header_len = 16;
    uint64_t length_field = payload.size();
    if (obs::TracingEnabled()) {
      const obs::SpanContext ctx = obs::CurrentSpanContext();
      if (ctx.valid()) {
        length_field |= kFrameTraceFlag;
        StoreLE<uint64_t>(header + 16, ctx.trace_id);
        StoreLE<uint64_t>(header + 24, ctx.span_id);
        header_len = 32;
      }
    }
    StoreLE<uint64_t>(header, length_field);
    StoreLE<uint64_t>(header + 8, token);
    RR_RETURN_IF_ERROR(conn_.Send(ByteSpan(header, header_len), deadline));
    for (size_t i = 0; i < payload.segment_count(); ++i) {
      RR_RETURN_IF_ERROR(
          hose_.SendThrough(conn_.fd(), payload.segment(i), deadline));
    }
    return Status::Ok();
  }();
  bool ack_decoded = false;
  if (status.ok()) status = ReadAck(deadline, &ack_decoded);
  if (status.code() == StatusCode::kDeadlineExceeded) {
    WireDeadlineExpiries().Inc();
  }
  if (!status.ok() && !ack_decoded) {
    // The transfer died without a decoded ack: the wire is dead, or — after
    // a deadline expiry with the frame (partially) on the wire — the ack
    // stream is indeterminate, and a LATER transfer on this channel would
    // consume THIS transfer's stale ack and be mis-attributed. Kill the
    // channel so subsequent sends fail typed instead of desyncing; callers
    // (hop eviction / reconnection) establish a fresh one. A decoded error
    // ack proves the channel is synchronized — it stays usable.
    ShutdownWire();
  }
  RR_RETURN_IF_ERROR(status);
  bytes_sent_ += payload.size();
  WireBytesSent().Inc(payload.size());
  WireFramesSent().Inc();
  return Status::Ok();
}

void NetworkChannelSender::ShutdownWire() {
  wire_ok_.store(false, std::memory_order_relaxed);
  conn_.ShutdownBoth();
  WireChannelKills().Inc();
}

Status NetworkChannelSender::ReadAck(TimePoint deadline, bool* ack_decoded) {
  uint8_t header[kAckHeaderBytes];
  RR_RETURN_IF_ERROR(
      conn_.Receive(MutableByteSpan(header, kAckHeaderBytes), deadline));
  if (header[0] != kAckMagic || header[1] > kMaxWireStatusCode) {
    return DataLossError("network channel: bad delivery ack");
  }
  const StatusCode code = static_cast<StatusCode>(header[1]);
  const uint16_t detail_length = LoadLE<uint16_t>(header + 2);
  if (detail_length > kMaxAckDetail) {
    return DataLossError("network channel: implausible ack detail length");
  }
  std::string detail;
  if (detail_length > 0) {
    detail.resize(detail_length);
    RR_RETURN_IF_ERROR(conn_.Receive(
        MutableByteSpan(reinterpret_cast<uint8_t*>(detail.data()),
                        detail.size()),
        deadline));
  }
  *ack_decoded = true;
  if (code == StatusCode::kOk) return Status::Ok();
  return Status(code, "remote delivery failed: " + detail);
}

Result<NetworkChannelReceiver> NetworkChannelReceiver::FromConnection(
    osal::Connection conn) {
  conn.SetNoDelay(true);
  RR_ASSIGN_OR_RETURN(VirtualDataHose hose, VirtualDataHose::Create());
  return NetworkChannelReceiver(std::move(conn), std::move(hose));
}

Result<FrameInfo> NetworkChannelReceiver::ReceiveHeader(TimePoint deadline) {
  uint8_t header[16];
  RR_RETURN_IF_ERROR(conn_.Receive(MutableByteSpan(header, 16), deadline));
  FrameInfo frame;
  const uint64_t length_field = LoadLE<uint64_t>(header);
  frame.length = length_field & ~kFrameTraceFlag;
  frame.token = LoadLE<uint64_t>(header + 8);
  if (frame.length > serde::kMaxFrameBytes || frame.length > UINT32_MAX) {
    return DataLossError("network channel: implausible frame length");
  }
  if (length_field & kFrameTraceFlag) {
    // Trace-context extension. A zero trace id is tolerated (the frame just
    // carries no usable context); a read failure is a desync like any other
    // truncated header.
    uint8_t extension[16];
    RR_RETURN_IF_ERROR(
        conn_.Receive(MutableByteSpan(extension, 16), deadline));
    frame.trace_id = LoadLE<uint64_t>(extension);
    frame.parent_span = LoadLE<uint64_t>(extension + 8);
  }
  return frame;
}

Status NetworkChannelReceiver::SendAck(const Status& status,
                                       TimePoint deadline) {
  if (!status.ok()) WireErrorAcks().Inc();
  const std::string& message = status.message();
  const size_t detail_length = std::min(message.size(), kMaxAckDetail);
  uint8_t header[kAckHeaderBytes];
  header[0] = kAckMagic;
  header[1] = static_cast<uint8_t>(status.code());
  StoreLE<uint16_t>(header + 2, static_cast<uint16_t>(detail_length));
  const ByteSpan parts[] = {
      ByteSpan(header, kAckHeaderBytes),
      ByteSpan(reinterpret_cast<const uint8_t*>(message.data()),
               detail_length)};
  return conn_.SendParts(parts, 2, deadline);
}

Status NetworkChannelReceiver::DrainBody(uint64_t length, TimePoint deadline) {
  uint8_t scratch[64 * 1024];
  uint64_t drained = 0;
  while (drained < length) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(sizeof(scratch), length - drained));
    RR_RETURN_IF_ERROR(conn_.Receive(MutableByteSpan(scratch, want), deadline));
    drained += want;
  }
  return Status::Ok();
}

Status NetworkChannelReceiver::DrainAndReject(uint64_t body_length,
                                              const Status& reason,
                                              TimePoint deadline,
                                              bool* rejected_in_sync) {
  RR_RETURN_IF_ERROR(DrainBody(body_length, deadline));
  RR_RETURN_IF_ERROR(SendAck(reason, deadline));
  if (rejected_in_sync != nullptr) *rejected_in_sync = true;
  return Status::Ok();
}

Status NetworkChannelReceiver::RejectBody(const FrameInfo& frame,
                                          const Status& reason) {
  return DrainAndReject(frame.length, reason,
                        osal::DeadlineAfter(transfer_deadline_), nullptr);
}

Result<MemoryRegion> NetworkChannelReceiver::ReceiveBody(
    const FrameInfo& frame, Shim& target, CopyMode mode,
    const RegionPlacer* place, bool* rejected_in_sync) {
  timing_ = {};
  if (rejected_in_sync != nullptr) *rejected_in_sync = false;
  const TimePoint deadline = osal::DeadlineAfter(transfer_deadline_);
  const uint64_t length = frame.length;
  const auto place_region = [&]() -> Result<MemoryRegion> {
    if (place != nullptr) return (*place)(static_cast<uint32_t>(length));
    return target.PrepareInput(static_cast<uint32_t>(length));
  };
  // Fails the frame while keeping the channel in sync: the body (still
  // entirely on the wire at the call sites below) is drained and `failure`
  // returns to the sender as a typed error ack. If the drain or ack itself
  // fails, the channel is dead and rejected_in_sync stays false.
  const auto reject_in_sync = [&](const Status& failure) -> Status {
    (void)DrainAndReject(length, failure, deadline, rejected_in_sync);
    return failure;
  };

  if (mode == CopyMode::kDirectGuest) {
    // allocate_memory(length) in the target, then splice the payload from
    // the socket into its linear-memory slice directly. Placement precedes
    // the body here, so a placement failure drains the wire before acking.
    const Stopwatch alloc_timer;
    auto region = place_region();
    if (!region.ok()) return reject_in_sync(region.status());
    RegionGuard guard(place == nullptr ? &target : nullptr, *region);
    auto dest = target.InputSpan(*region);
    if (!dest.ok()) return reject_in_sync(dest.status());
    timing_.wasm_io = alloc_timer.Elapsed();
    const Stopwatch transfer_timer;
    // A mid-body failure desyncs the channel (an unknown count of payload
    // bytes was consumed): no ack — the guard releases the region and the
    // caller tears the wire down; the sender fails on its own deadline/EOF.
    RR_RETURN_IF_ERROR(hose_.ReceiveThrough(conn_.fd(), *dest, deadline));
    RR_RETURN_IF_ERROR(SendAck(Status::Ok(), deadline));
    timing_.transfer = transfer_timer.Elapsed();
    bytes_received_ += length;
    WireBytesReceived().Inc(length);
    guard.Dismiss();
    return *region;
  }

  // Paper path (Algorithm 1 target): splice into the hose, land in a shim
  // buffer (transfer), then allocate + write_memory_host into the VM. The
  // ack moves AFTER the payload durably landed — a placement or write
  // failure now reaches the sender as a typed error instead of a recorded
  // success, and the staged body keeps the channel in sync for the next
  // frame.
  Bytes staged(length);
  const Stopwatch transfer_timer;
  RR_RETURN_IF_ERROR(hose_.ReceiveThrough(conn_.fd(), staged, deadline));
  timing_.transfer = transfer_timer.Elapsed();
  const Stopwatch io_timer;
  auto region = place_region();
  if (!region.ok()) {
    // Body already staged (drain length 0): the refusal is just the ack.
    (void)DrainAndReject(0, region.status(), deadline, rejected_in_sync);
    return region.status();
  }
  RegionGuard guard(place == nullptr ? &target : nullptr, *region);
  const Status written = target.data().write_memory_host(staged, region->address);
  if (!written.ok()) {
    (void)DrainAndReject(0, written, deadline, rejected_in_sync);
    return written;
  }
  RR_RETURN_IF_ERROR(SendAck(Status::Ok(), deadline));
  timing_.wasm_io = io_timer.Elapsed();
  bytes_received_ += length;
  WireBytesReceived().Inc(length);
  guard.Dismiss();
  return *region;
}

Result<MemoryRegion> NetworkChannelReceiver::ReceiveInto(Shim& target,
                                                         CopyMode mode,
                                                         uint64_t* token,
                                                         const RegionPlacer* place) {
  RR_ASSIGN_OR_RETURN(
      const FrameInfo frame,
      ReceiveHeader(osal::DeadlineAfter(transfer_deadline_)));
  if (token != nullptr) *token = frame.token;
  return ReceiveBody(frame, target, mode, place);
}

Result<InvokeOutcome> NetworkChannelReceiver::ReceiveAndInvoke(Shim& target,
                                                               CopyMode mode,
                                                               uint64_t* token) {
  RR_ASSIGN_OR_RETURN(const MemoryRegion region,
                      ReceiveInto(target, mode, token));
  RegionGuard guard(&target, region);
  auto outcome = target.InvokeOnRegion(region);
  // A successful invoke consumes the input region; a failed one leaves it
  // allocated in the target's sandbox — the guard reclaims it.
  if (outcome.ok()) guard.Dismiss();
  return outcome;
}

Result<NetworkChannelListener> NetworkChannelListener::Bind(uint16_t port) {
  RR_ASSIGN_OR_RETURN(osal::TcpListener listener, osal::TcpListener::Bind(port));
  return NetworkChannelListener(std::move(listener));
}

Result<NetworkChannelReceiver> NetworkChannelListener::Accept() {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, listener_.Accept());
  return NetworkChannelReceiver::FromConnection(std::move(conn));
}

}  // namespace rr::core
