#include "core/network_channel.h"

#include "serde/framing.h"

namespace rr::core {

// Terminates every network transfer: receiver -> sender, confirming the
// payload left the kernel's queues (vmsplice page-reuse protocol).
constexpr uint8_t kDeliveryAck = 0xA5;

Result<VirtualDataHose> VirtualDataHose::Create(size_t pipe_capacity) {
  RR_ASSIGN_OR_RETURN(osal::Pipe pipe, osal::Pipe::Create(pipe_capacity));
  return VirtualDataHose(std::move(pipe));
}

Status VirtualDataHose::SendThrough(int socket_fd, ByteSpan data) {
  bytes_moved_ += data.size();
  if (use_splice_) {
    return osal::HoseSend(pipe_, socket_fd, data);
  }
  return osal::WriteAll(socket_fd, data);
}

Status VirtualDataHose::ReceiveThrough(int socket_fd, MutableByteSpan out) {
  bytes_moved_ += out.size();
  if (use_splice_) {
    return osal::HoseReceive(pipe_, socket_fd, out);
  }
  return osal::ReadExact(socket_fd, out);
}

Result<NetworkChannelSender> NetworkChannelSender::Connect(
    const std::string& host, uint16_t port) {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, osal::TcpConnect(host, port));
  return FromConnection(std::move(conn));
}

Result<NetworkChannelSender> NetworkChannelSender::FromConnection(
    osal::Connection conn) {
  conn.SetNoDelay(true);
  RR_ASSIGN_OR_RETURN(VirtualDataHose hose, VirtualDataHose::Create());
  return NetworkChannelSender(std::move(conn), std::move(hose));
}

Status NetworkChannelSender::Send(Shim& source, const MemoryRegion& region,
                                  CopyMode mode, uint64_t token) {
  timing_ = {};
  if (mode == CopyMode::kDirectGuest) {
    RR_ASSIGN_OR_RETURN(const ByteSpan view, source.OutputView(region));
    const Stopwatch transfer_timer;
    RR_RETURN_IF_ERROR(SendBytes(view, token));
    timing_.transfer = transfer_timer.Elapsed();
    return Status::Ok();
  }
  // Paper path: shim reads the data out of the VM (Wasm VM I/O), then maps
  // the shim buffer's pages into the hose.
  Bytes staged(region.length);
  const Stopwatch io_timer;
  RR_RETURN_IF_ERROR(source.sandbox().ReadMemoryHost(region.address, staged));
  timing_.wasm_io = io_timer.Elapsed();
  const Stopwatch transfer_timer;
  RR_RETURN_IF_ERROR(SendBytes(staged, token));
  timing_.transfer = transfer_timer.Elapsed();
  return Status::Ok();
}

Status NetworkChannelSender::SendBytes(ByteSpan data, uint64_t token) {
  return SendBuffer(rr::BufferView(data), token);
}

Status NetworkChannelSender::SendBuffer(const rr::BufferView& payload,
                                        uint64_t token) {
  // Frame header first (16 bytes: length + correlation token), then the body
  // through the hose, chunk by chunk — the hose references each chunk's
  // pages, never copies or reassembles them. The sender must not reuse the
  // pages until the receiver confirms delivery: the protocol ends with a
  // 1-byte ack. (SIOCOUTQ draining is NOT sufficient — on loopback the
  // receive queue's skbs still reference the spliced pages until the peer's
  // read(2).)
  uint8_t header[16];
  StoreLE<uint64_t>(header, payload.size());
  StoreLE<uint64_t>(header + 8, token);
  RR_RETURN_IF_ERROR(conn_.Send(ByteSpan(header, 16)));
  for (size_t i = 0; i < payload.segment_count(); ++i) {
    RR_RETURN_IF_ERROR(hose_.SendThrough(conn_.fd(), payload.segment(i)));
  }
  uint8_t ack = 0;
  RR_RETURN_IF_ERROR(conn_.Receive(MutableByteSpan(&ack, 1)));
  if (ack != kDeliveryAck) {
    return DataLossError("network channel: bad delivery ack");
  }
  bytes_sent_ += payload.size();
  return Status::Ok();
}

Result<NetworkChannelReceiver> NetworkChannelReceiver::FromConnection(
    osal::Connection conn) {
  conn.SetNoDelay(true);
  RR_ASSIGN_OR_RETURN(VirtualDataHose hose, VirtualDataHose::Create());
  return NetworkChannelReceiver(std::move(conn), std::move(hose));
}

Result<FrameInfo> NetworkChannelReceiver::ReceiveHeader() {
  uint8_t header[16];
  RR_RETURN_IF_ERROR(conn_.Receive(MutableByteSpan(header, 16)));
  FrameInfo frame;
  frame.length = LoadLE<uint64_t>(header);
  frame.token = LoadLE<uint64_t>(header + 8);
  if (frame.length > serde::kMaxFrameBytes || frame.length > UINT32_MAX) {
    return DataLossError("network channel: implausible frame length");
  }
  return frame;
}

Result<MemoryRegion> NetworkChannelReceiver::ReceiveBody(const FrameInfo& frame,
                                                         Shim& target,
                                                         CopyMode mode,
                                                         const RegionPlacer* place) {
  timing_ = {};
  const uint64_t length = frame.length;
  const auto place_region = [&]() -> Result<MemoryRegion> {
    if (place != nullptr) return (*place)(static_cast<uint32_t>(length));
    return target.PrepareInput(static_cast<uint32_t>(length));
  };

  if (mode == CopyMode::kDirectGuest) {
    // allocate_memory(length) in the target, then splice the payload from
    // the socket into its linear-memory slice directly.
    const Stopwatch alloc_timer;
    RR_ASSIGN_OR_RETURN(const MemoryRegion region, place_region());
    RR_ASSIGN_OR_RETURN(MutableByteSpan dest, target.InputSpan(region));
    timing_.wasm_io = alloc_timer.Elapsed();
    const Stopwatch transfer_timer;
    RR_RETURN_IF_ERROR(hose_.ReceiveThrough(conn_.fd(), dest));
    RR_RETURN_IF_ERROR(conn_.Send(ByteSpan(&kDeliveryAck, 1)));
    timing_.transfer = transfer_timer.Elapsed();
    bytes_received_ += length;
    return region;
  }

  // Paper path (Algorithm 1 target): splice into the hose, land in a shim
  // buffer (transfer), then allocate + write_memory_host into the VM.
  Bytes staged(length);
  const Stopwatch transfer_timer;
  RR_RETURN_IF_ERROR(hose_.ReceiveThrough(conn_.fd(), staged));
  RR_RETURN_IF_ERROR(conn_.Send(ByteSpan(&kDeliveryAck, 1)));
  timing_.transfer = transfer_timer.Elapsed();
  const Stopwatch io_timer;
  RR_ASSIGN_OR_RETURN(const MemoryRegion region, place_region());
  RR_RETURN_IF_ERROR(target.data().write_memory_host(staged, region.address));
  timing_.wasm_io = io_timer.Elapsed();
  bytes_received_ += length;
  return region;
}

Result<MemoryRegion> NetworkChannelReceiver::ReceiveInto(Shim& target,
                                                         CopyMode mode,
                                                         uint64_t* token,
                                                         const RegionPlacer* place) {
  RR_ASSIGN_OR_RETURN(const FrameInfo frame, ReceiveHeader());
  if (token != nullptr) *token = frame.token;
  return ReceiveBody(frame, target, mode, place);
}

Result<InvokeOutcome> NetworkChannelReceiver::ReceiveAndInvoke(Shim& target,
                                                               CopyMode mode,
                                                               uint64_t* token) {
  RR_ASSIGN_OR_RETURN(const MemoryRegion region,
                      ReceiveInto(target, mode, token));
  return target.InvokeOnRegion(region);
}

Result<NetworkChannelListener> NetworkChannelListener::Bind(uint16_t port) {
  RR_ASSIGN_OR_RETURN(osal::TcpListener listener, osal::TcpListener::Bind(port));
  return NetworkChannelListener(std::move(listener));
}

Result<NetworkChannelReceiver> NetworkChannelListener::Accept() {
  RR_ASSIGN_OR_RETURN(osal::Connection conn, listener_.Accept());
  return NetworkChannelReceiver::FromConnection(std::move(conn));
}

}  // namespace rr::core
