// Payload: the executor-side handle to one function-output's bytes.
//
// A payload starts *guest-resident* — it owns the producer's registered
// output region — and becomes *host-resident* on first Materialize(): one
// read_memory_host egress into a ref-counted rr::Buffer chunk, after which
// the guest region is released (guest heap pressure ends at egress) and
// every holder shares the same immutable chunk. Copying a Payload is a
// refcount bump; an N-way fan-out hands the same handle to N successors and
// the plane performs exactly one egress copy, not N.
//
// Hops pick the cheapest access per transfer: a user-space hop forwards a
// still-guest-resident payload with the classic single guest-to-guest copy
// (no host buffer at all), while kernel/network hops and fan-outs
// materialize once and then read the shared chunks with zero further copies.
//
// Concurrency: Materialize is internally synchronized and idempotent. The
// guest_shim()/guest_region() fast-path accessors are for a payload's single
// consumer (the executor materializes before sharing a payload with more
// than one); every touch of the owning instance's memory happens under that
// instance's exec mutex.
//
// A guest-resident payload pins its owning pool INSTANCE — the specific
// sandbox whose linear memory holds the region — but deliberately not the
// instance's pool lease: the producing invocation returns its instance to
// the pool immediately, and a region-consuming reader later synchronizes
// with whatever invocation the pool admitted next through the instance's
// exec mutex. (Holding the lease itself across scheduler dispatch
// boundaries would deadlock a bounded pool against the bounded worker set:
// the successor that frees the instance may never get a worker.) The last
// handle to a never-materialized payload releases the guest region, so a
// cancelled run cleans up its frontier without executor bookkeeping.
#pragma once

#include <memory>
#include "common/mutex.h"

#include "common/buffer.h"
#include "core/shim.h"

namespace rr::core {

class Payload {
 public:
  Payload() = default;

  // Host-resident payload over an existing buffer (workflow input, merged
  // fan-in frame). Shares the buffer's chunks.
  explicit Payload(rr::Buffer buffer);

  // Adopts a guest output region in `instance` (the pool instance whose
  // invocation produced it): the payload owns the region and releases it at
  // egress or with the last handle. `instance` must outlive the payload (its
  // pool does; the instance may serve other invocations in the meantime).
  static Payload FromGuest(Shim* instance, MemoryRegion region);

  size_t size() const;

  // True while the bytes still live (only) in the producer's linear memory.
  bool guest_resident() const;

  // Single-consumer fast path (see header comment). Null when host-resident.
  Shim* guest_shim() const;
  const MemoryRegion* guest_region() const;

  // The host-resident bytes. The first call egresses the guest region (one
  // read_memory_host under the source shim's exec mutex, duration added to
  // *wasm_io when non-null, bytes counted as the plane's payload copy) and
  // releases it; later calls return the shared chunk for free.
  Result<rr::Buffer> Materialize(Nanos* wasm_io = nullptr) const;

  // Drops this handle's claim without reading the bytes.
  void Reset() { state_.reset(); }

 private:
  struct State {
    ~State();

    Mutex mutex;
    // Non-null while a guest region is held.
    Shim* shim RR_GUARDED_BY(mutex) = nullptr;
    MemoryRegion region RR_GUARDED_BY(mutex){};
    rr::Buffer buffer RR_GUARDED_BY(mutex);
    // True once `buffer` holds the bytes.
    bool materialized RR_GUARDED_BY(mutex) = false;
    size_t size = 0;
  };

  std::shared_ptr<State> state_;
};

}  // namespace rr::core
