// MuxClient: the sender-side counterpart of the agent's multiplexed wire
// dialect (mux_protocol.h).
//
// One client owns one TCP connection to one remote NodeAgent and carries
// every concurrent transfer to that agent as an interleaved stream:
//
//  * StartStream opens a stream and returns immediately; the payload drains
//    through the shared reactor's event loop as chunk frames, fair
//    round-robin across all active streams — one quantum (kMuxMaxChunk) per
//    turn, so a 64 MiB transfer cannot head-of-line-block a 4 KiB one.
//  * A stream that exhausts its flow-control window leaves the send ring
//    (counted in rr_agent_stream_stalls_total) until the agent's next
//    window-update frame; the other streams keep the wire busy.
//  * The agent's completion frame carries the remote *invocation* outcome;
//    `done` fires with it as soon as the frame arrives — a remote handler
//    failure fails the caller immediately, not at some delivery deadline.
//  * While a stream's body is still draining, it must make progress (bytes
//    sent, window granted, or completed) within the transfer deadline passed
//    to StartStream, or it is cancelled with kDeadlineExceeded. Once the
//    body is fully sent the invocation may run as long as the caller's own
//    backstop allows — the client imposes no completion deadline.
//  * A dead connection fails every in-flight stream with kUnavailable and
//    the next StartStream reconnects inline (this is also how an agent-side
//    idle sweep is absorbed transparently).
//
// Thread contract: StartStream/Close are callable from any thread. `done`
// callbacks fire on the reactor thread (completions, connection death) or on
// the caller's thread (failures during StartStream's own pump) — never with
// the client's lock held, and exactly once per OK StartStream.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/mux_protocol.h"
#include "obs/trace.h"
#include "osal/fd.h"
#include "osal/reactor.h"
#include "osal/socket.h"

namespace rr::core {

class MuxClient : public std::enable_shared_from_this<MuxClient> {
 public:
  // Receives the stream's final status: the remote invocation outcome, or a
  // transport/deadline failure.
  using DoneFn = std::function<void(Status)>;

  // The connection is opened lazily by the first StartStream.
  static std::shared_ptr<MuxClient> Create(
      std::shared_ptr<osal::Reactor> reactor, std::string host, uint16_t port);

  ~MuxClient();

  MuxClient(const MuxClient&) = delete;
  MuxClient& operator=(const MuxClient&) = delete;

  // Opens a stream carrying `payload` to `function` on the remote agent.
  // Returns non-OK only when the stream could not be initiated — `done` then
  // never fires. On OK, `done` fires exactly once (possibly before this call
  // returns). The caller's trace context is captured here and travels in the
  // open frame. `transfer_deadline` bounds body-drain *progress*, not the
  // remote invocation; non-positive = unbounded.
  Status StartStream(const std::string& function, rr::Buffer payload,
                     uint64_t token, Nanos transfer_deadline, DoneFn done);

  // Fails every in-flight stream with kUnavailable and closes the
  // connection. Idempotent; further StartStream calls are refused.
  void Close();

  bool connected() const;
  size_t streams_in_flight() const;

 private:
  struct Stream {
    rr::Buffer payload;
    size_t offset = 0;          // payload bytes fully handed to the kernel
    size_t window = kMuxInitialWindow;
    bool stalled = false;       // out of the ring, waiting on a window update
    Nanos progress_budget{0};   // non-positive = unbounded
    TimePoint last_progress;
    DoneFn done;
  };

  // One wire frame mid-write: a self-contained span list, so the stream it
  // came from may complete or be cancelled without corrupting the wire.
  struct OutFrame {
    bool active = false;
    uint8_t header[kMuxFrameHeaderBytes];
    Bytes control;          // control frames own their bytes here
    rr::Buffer body_ref;    // keeps a data frame's chunk storage alive
    std::vector<ByteSpan> parts;
    size_t part = 0;
    size_t part_offset = 0;
  };

  // A done callback captured under the lock, fired after it is released.
  using Fired = std::pair<DoneFn, Status>;

  MuxClient(std::shared_ptr<osal::Reactor> reactor, std::string host,
            uint16_t port)
      : reactor_(std::move(reactor)), host_(std::move(host)), port_(port) {}

  // Split connect: Dial runs the blocking TcpConnect + preamble WITHOUT the
  // lock (it touches only immutable members), InstallLocked registers the
  // socket with the reactor and flips connected_ under it.
  Result<osal::Connection> Dial();
  Status InstallLocked(osal::Connection conn) RR_REQUIRES(mutex_);
  void OnEvent(uint64_t gen, uint32_t events);
  void SweepDeadlines();
  bool ReadLocked(std::vector<Fired>* fired) RR_REQUIRES(mutex_);
  bool HandleFrameLocked(std::vector<Fired>* fired) RR_REQUIRES(mutex_);
  // false = the connection died mid-write.
  bool PumpLocked() RR_REQUIRES(mutex_);
  bool StageNextLocked() RR_REQUIRES(mutex_);
  void SetWritableLocked(bool writable) RR_REQUIRES(mutex_);
  void ConnDeadLocked(std::vector<Fired>* fired, const Status& reason)
      RR_REQUIRES(mutex_);
  static void Fire(std::vector<Fired>& fired);

  // WEAK on purpose: the reactor's ticker and event handler hold the client
  // through weak_ptr::lock() temporaries, so during teardown the LOOP thread
  // can briefly own the last MuxClient reference. If the client also owned
  // the reactor, that drop would run ~Reactor on the reactor's own loop
  // thread — Stop() would join itself. The client's owner keeps the strong
  // reactor reference and tears down off-loop (Close(), then the client,
  // then the reactor); a failed lock() here means teardown is underway and
  // the operation degrades to "connection dead".
  const std::weak_ptr<osal::Reactor> reactor_;
  const std::string host_;
  const uint16_t port_;

  mutable Mutex mutex_;
  bool closed_ RR_GUARDED_BY(mutex_) = false;
  bool connected_ RR_GUARDED_BY(mutex_) = false;
  bool writable_armed_ RR_GUARDED_BY(mutex_) = false;
  uint64_t conn_gen_ RR_GUARDED_BY(mutex_) = 0;
  osal::UniqueFd fd_ RR_GUARDED_BY(mutex_);
  uint64_t ticker_id_ RR_GUARDED_BY(mutex_) = 0;

  uint32_t next_stream_id_ RR_GUARDED_BY(mutex_) = 1;
  std::unordered_map<uint32_t, Stream> streams_ RR_GUARDED_BY(mutex_);
  // Streams with sendable bytes + window.
  std::deque<uint32_t> ring_ RR_GUARDED_BY(mutex_);
  // Opens and cancels, sent first.
  std::deque<Bytes> control_ RR_GUARDED_BY(mutex_);
  OutFrame out_ RR_GUARDED_BY(mutex_);

  // Receive state: a frame header, then (completions only) its detail.
  uint8_t racc_[kMuxFrameHeaderBytes + kMuxMaxCompletionDetail]
      RR_GUARDED_BY(mutex_);
  size_t rneed_ RR_GUARDED_BY(mutex_) = kMuxFrameHeaderBytes;
  size_t rgot_ RR_GUARDED_BY(mutex_) = 0;
  // Header parsed, detail accumulating.
  bool rheader_pending_ RR_GUARDED_BY(mutex_) = false;
  MuxFrameHeader rh_ RR_GUARDED_BY(mutex_);
};

}  // namespace rr::core
