// User-space data transfer (§4.1, Fig. 4a): both functions are modules of
// the same Wasm VM / process. The shim reads the source region and writes it
// into memory freshly allocated in the target — a single in-process copy,
// no serialization, no syscalls, no context switches.
#pragma once

#include "core/shim.h"

namespace rr::core {

class UserSpaceChannel {
 public:
  // Both shims must manage modules of the same trust domain; user-mode
  // communication "requires explicit trust" (§4.1).
  static Result<UserSpaceChannel> Create(Shim* source, Shim* target);

  // Executes steps 1..5 of Fig. 4a: locate in source, read via shim,
  // allocate in target, write. Returns the delivered region in the target.
  // A non-null `into` (a pre-registered slice of exactly the source length,
  // e.g. one leg of a fan-in gather region) replaces the allocation.
  Result<MemoryRegion> Transfer(const MemoryRegion& source_region,
                                const MemoryRegion* into = nullptr);

  // Transfer + invoke the target function on the delivered data.
  Result<InvokeOutcome> TransferAndInvoke(const MemoryRegion& source_region);

  uint64_t bytes_transferred() const { return bytes_transferred_; }

 private:
  UserSpaceChannel(Shim* source, Shim* target) : source_(source), target_(target) {}

  Shim* source_;
  Shim* target_;
  uint64_t bytes_transferred_ = 0;
};

}  // namespace rr::core
