#include "core/shim_pool.h"

#include <map>

namespace rr::core {

Result<std::shared_ptr<ShimPool>> ShimPool::Create(
    runtime::FunctionSpec spec, ByteSpan wasm_binary,
    runtime::SandboxOptions sandbox_options, runtime::PoolOptions pool_options) {
  auto pool = std::shared_ptr<ShimPool>(new ShimPool());
  pool->spec_ = std::move(spec);
  pool->binary_ = Bytes(wasm_binary.begin(), wasm_binary.end());
  pool->sandbox_options_ = sandbox_options;
  return Finish(std::move(pool), pool_options);
}

Result<std::shared_ptr<ShimPool>> ShimPool::CreateInVm(
    runtime::WasmVm& vm, runtime::FunctionSpec spec, ByteSpan wasm_binary,
    runtime::SandboxOptions sandbox_options, runtime::PoolOptions pool_options) {
  auto pool = std::shared_ptr<ShimPool>(new ShimPool());
  pool->spec_ = std::move(spec);
  pool->binary_ = Bytes(wasm_binary.begin(), wasm_binary.end());
  pool->sandbox_options_ = sandbox_options;
  pool->vm_ = &vm;
  return Finish(std::move(pool), pool_options);
}

Result<std::shared_ptr<ShimPool>> ShimPool::Adopt(Shim* shim) {
  if (shim == nullptr) {
    return InvalidArgumentError("cannot adopt a null shim");
  }
  // Memoized per shim: every path that wraps the same raw instance (a
  // WorkflowManager registration AND a NodeAgent registration, say) must
  // share one pool, or their leases would not mutually exclude.
  static Mutex adopted_mutex;
  static std::map<Shim*, std::weak_ptr<ShimPool>>& adopted =
      *new std::map<Shim*, std::weak_ptr<ShimPool>>();
  MutexLock lock(adopted_mutex);
  for (auto it = adopted.begin(); it != adopted.end();) {
    it = it->second.expired() ? adopted.erase(it) : std::next(it);
  }
  const auto it = adopted.find(shim);
  if (it != adopted.end()) {
    if (std::shared_ptr<ShimPool> existing = it->second.lock()) return existing;
  }
  auto pool = std::shared_ptr<ShimPool>(new ShimPool());
  pool->adopted_ = shim;
  runtime::PoolOptions options;
  options.min_warm = 1;
  options.max_instances = 1;
  RR_ASSIGN_OR_RETURN(pool, Finish(std::move(pool), options));
  adopted[shim] = pool;
  return pool;
}

Result<std::shared_ptr<ShimPool>> ShimPool::Finish(
    std::shared_ptr<ShimPool> pool, runtime::PoolOptions pool_options) {
  ShimPool* const raw = pool.get();
  RR_ASSIGN_OR_RETURN(
      raw->pool_,
      runtime::InstancePool::Create([raw] { return raw->MakeInstance(); },
                                    pool_options));
  return pool;
}

Result<std::unique_ptr<runtime::InstancePool::Instance>>
ShimPool::MakeInstance() {
  std::unique_ptr<PooledShim> instance;
  if (adopted_ != nullptr) {
    instance = std::make_unique<PooledShim>(adopted_);
  } else {
    // fetch_add: concurrent lazy growers must each claim a distinct replica
    // index (the shared-VM module table is keyed by name).
    const size_t replica = replicas_created_.fetch_add(1);
    runtime::FunctionSpec spec = spec_;
    if (replica > 0) {
      // Shared-VM replicas need distinct module names; dedicated replicas
      // keep them too so logs and metrics identify the instance.
      spec.name += "#" + std::to_string(replica);
    }
    std::unique_ptr<Shim> shim;
    if (vm_ != nullptr) {
      RR_ASSIGN_OR_RETURN(shim,
                          Shim::CreateInVm(*vm_, std::move(spec), binary_,
                                           sandbox_options_));
    } else {
      RR_ASSIGN_OR_RETURN(shim, Shim::Create(std::move(spec), binary_,
                                             sandbox_options_));
    }
    instance = std::make_unique<PooledShim>(std::move(shim));
  }
  if (prototype_ == nullptr) prototype_ = instance->shim;
  runtime::NativeHandler handler;
  {
    MutexLock lock(handler_mutex_);
    handler = handler_;
  }
  if (handler != nullptr) {
    RR_RETURN_IF_ERROR(instance->shim->Deploy(std::move(handler)));
  }
  return std::unique_ptr<runtime::InstancePool::Instance>(std::move(instance));
}

Status ShimPool::Deploy(runtime::NativeHandler handler) {
  {
    MutexLock lock(handler_mutex_);
    handler_ = handler;
  }
  Status status;
  pool_->ForEachInstance([&](runtime::InstancePool::Instance& instance) {
    Shim* const shim = static_cast<PooledShim&>(instance).shim;
    const Status deployed = shim->Deploy(handler);
    if (status.ok() && !deployed.ok()) status = deployed;
  });
  return status;
}

Result<ShimLease> ShimPool::Lease() {
  RR_ASSIGN_OR_RETURN(runtime::InstancePool::Lease lease, pool_->Acquire());
  Shim* const shim = static_cast<PooledShim*>(lease.get())->shim;
  return ShimLease(shared_from_this(), std::move(lease), shim);
}

uint64_t ShimPool::invocations() const {
  uint64_t total = 0;
  pool_->ForEachInstance([&](runtime::InstancePool::Instance& instance) {
    total += static_cast<PooledShim&>(instance).shim->invocations();
  });
  return total;
}

}  // namespace rr::core
