#include "core/shim.h"

namespace rr::core {

Result<std::unique_ptr<Shim>> Shim::Create(runtime::FunctionSpec spec,
                                           ByteSpan wasm_binary,
                                           runtime::WasmSandbox::Options options) {
  RR_ASSIGN_OR_RETURN(auto sandbox,
                      runtime::WasmSandbox::Create(std::move(spec), wasm_binary,
                                                   options));
  runtime::WasmSandbox* raw = sandbox.get();
  return std::unique_ptr<Shim>(new Shim(std::move(sandbox), raw));
}

Result<std::unique_ptr<Shim>> Shim::CreateInVm(
    runtime::WasmVm& vm, runtime::FunctionSpec spec, ByteSpan wasm_binary,
    runtime::WasmSandbox::Options options) {
  RR_ASSIGN_OR_RETURN(runtime::WasmSandbox* const module,
                      vm.AddModule(std::move(spec), wasm_binary, options));
  return std::unique_ptr<Shim>(new Shim(nullptr, module));
}

Result<InvokeOutcome> Shim::DeliverAndInvoke(ByteSpan input) {
  return DeliverAndInvoke(rr::BufferView(input));
}

Result<InvokeOutcome> Shim::DeliverAndInvoke(const rr::BufferView& input) {
  if (input.size() > UINT32_MAX) {
    return ResourceExhaustedError("input exceeds 32-bit guest memory");
  }
  RR_ASSIGN_OR_RETURN(const MemoryRegion in_region,
                      PrepareInput(static_cast<uint32_t>(input.size())));
  const Status written = WriteInput(in_region, input);
  if (!written.ok()) {
    (void)ReleaseRegion(in_region);
    return written;
  }
  return InvokeOnRegion(in_region);
}

Status Shim::WriteInput(const MemoryRegion& region, const rr::BufferView& data) {
  if (data.size() != region.length) {
    return InvalidArgumentError("payload length does not match input region");
  }
  return data_.write_memory_host(data, region.address);
}

Result<MemoryRegion> Shim::PrepareInput(uint32_t length) {
  RR_ASSIGN_OR_RETURN(const uint32_t address,
                      data_.allocate_memory(std::max<uint32_t>(1, length)));
  return MemoryRegion{address, length};
}

Result<MutableByteSpan> Shim::InputSpan(const MemoryRegion& region) {
  if (!data_.IsRegistered(region.address, region.length)) {
    return PermissionDeniedError("input region not registered");
  }
  return sandbox_->MutableSliceMemory(region.address, region.length);
}

Result<InvokeOutcome> Shim::InvokeOnRegion(const MemoryRegion& region) {
  invocations_.fetch_add(1, std::memory_order_relaxed);
  RR_ASSIGN_OR_RETURN(const runtime::WasmSandbox::InvokeResult result,
                      sandbox_->InvokeInPlace(region.address, region.length));
  // The function's output is a fresh allocator region; register it for shim
  // egress (this is the locate_memory_region + send_to_host handshake).
  const MemoryRegion output{result.output_address, result.output_length};
  RR_RETURN_IF_ERROR(data_.RegisterRegion(output));
  RR_RETURN_IF_ERROR(data_.send_to_host(output.address, output.length));
  // The input region was consumed by the call.
  RR_RETURN_IF_ERROR(data_.deallocate_memory(region.address));
  return InvokeOutcome{output};
}

}  // namespace rr::core
