// The multiplexed agent wire protocol: many logical transfers, one TCP
// connection.
//
// The legacy agent wire (network_channel.h) is strictly sequential: one
// frame, one delivery ack, and the sender parks for the round trip — so a
// connection carries one transfer at a time and a large frame head-of-line
// blocks everything behind it. The mux protocol replaces that with streams:
//
//  * Every logical transfer is a *stream*, identified by a connection-local
//    u32 id the sender allocates. A stream opens (kOpen, carrying the
//    routing metadata the legacy preamble + frame header used to), moves its
//    body as interleaved chunk frames (kData, at most kMuxMaxChunk each, so
//    a 64 MiB transfer cannot monopolize the wire against a 4 KiB one), and
//    ends with the agent's kCompletion frame reporting the *invocation*
//    outcome — not just delivery. A remote handler failure therefore fails
//    the sender's edge immediately instead of waiting out a deadline.
//  * Flow control is per-stream: a stream may have at most
//    kMuxInitialWindow un-granted body bytes on the wire; the agent extends
//    the window with kWindowUpdate frames as it consumes. A sender that
//    exhausts its window stalls that one stream (counted) and keeps serving
//    the others.
//
// ## Connection preamble
//
// The legacy routing preamble starts with a u16 LE name length in 1..256. A
// mux connection announces itself with the impossible length 0xFFFF, so one
// agent ingress serves both dialects from the first two bytes:
//
//   [u16 LE 0xFFFF][u8 version = 1][u8 reserved = 0]
//
// ## Frame layout (both directions, 16-byte header)
//
//   [u8 type][u8 flags][u16 LE reserved][u32 LE stream_id]
//   [u32 LE payload_length][u32 LE aux]
//
//   kOpen          sender -> agent   payload: [u64 LE token]
//                                             [u64 LE body_length]
//                                             [u16 LE name length][name]
//                                             [u64 trace_id][u64 parent_span]
//                                               (present iff kMuxFlagTrace)
//   kData          sender -> agent   payload: body chunk (<= kMuxMaxChunk)
//   kWindowUpdate  agent -> sender   aux: credit bytes granted
//   kCompletion    agent -> sender   aux: StatusCode; payload: detail string
//   kCancel        sender -> agent   abandons the stream (deadline expiry)
//
// Frames for an unknown stream id are tolerated silently (a kData racing a
// kCancel, a kCompletion racing a sender-side deadline); malformed frames —
// unknown type, per-type length-cap violations, kData overrunning the
// declared body — are connection-fatal, because the byte stream past them
// cannot be re-framed.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "serde/framing.h"

namespace rr::core {

// Preamble magic: an impossible legacy name length.
inline constexpr uint16_t kMuxPreambleMagic = 0xFFFF;
inline constexpr uint8_t kMuxVersion = 1;
inline constexpr size_t kMuxPreambleBytes = 4;

inline constexpr size_t kMuxFrameHeaderBytes = 16;

// Frame types.
inline constexpr uint8_t kMuxFrameOpen = 1;
inline constexpr uint8_t kMuxFrameData = 2;
inline constexpr uint8_t kMuxFrameWindowUpdate = 3;
inline constexpr uint8_t kMuxFrameCompletion = 4;
inline constexpr uint8_t kMuxFrameCancel = 5;

// kOpen flags.
inline constexpr uint8_t kMuxFlagTrace = 0x01;

// Scheduling quantum: the largest body chunk one kData frame may carry. One
// quantum is one round-robin turn, so the latency a small stream pays behind
// N busy streams is bounded by N quanta, not by anyone's body size.
inline constexpr size_t kMuxMaxChunk = 64 * 1024;

// A stream's initial flow-control window. The agent grants more as it
// consumes; a sender may never have more un-granted body bytes in flight.
inline constexpr size_t kMuxInitialWindow = 256 * 1024;

// The agent re-grants consumed window once at least this much accumulated
// (half a window: updates amortize without ever letting the window drain).
inline constexpr size_t kMuxWindowUpdateThreshold = kMuxInitialWindow / 2;

// Per-type payload caps: violations are connection-fatal.
inline constexpr size_t kMuxMaxOpenPayload = 2 * 1024;
inline constexpr size_t kMuxMaxCompletionDetail = 512;

struct MuxFrameHeader {
  uint8_t type = 0;
  uint8_t flags = 0;
  uint32_t stream_id = 0;
  uint32_t payload_length = 0;
  uint32_t aux = 0;
};

inline void EncodeMuxFrameHeader(const MuxFrameHeader& h, uint8_t* out) {
  out[0] = h.type;
  out[1] = h.flags;
  StoreLE<uint16_t>(out + 2, 0);
  StoreLE<uint32_t>(out + 4, h.stream_id);
  StoreLE<uint32_t>(out + 8, h.payload_length);
  StoreLE<uint32_t>(out + 12, h.aux);
}

inline MuxFrameHeader DecodeMuxFrameHeader(const uint8_t* in) {
  MuxFrameHeader h;
  h.type = in[0];
  h.flags = in[1];
  h.stream_id = LoadLE<uint32_t>(in + 4);
  h.payload_length = LoadLE<uint32_t>(in + 8);
  h.aux = LoadLE<uint32_t>(in + 12);
  return h;
}

// Validates a decoded header's type and per-type payload cap. kData's
// body-overrun check needs stream state and stays with the caller.
inline Status ValidateMuxFrameHeader(const MuxFrameHeader& h,
                                     bool receiver_is_agent) {
  switch (h.type) {
    case kMuxFrameOpen:
      if (!receiver_is_agent) break;
      if (h.payload_length == 0 || h.payload_length > kMuxMaxOpenPayload) {
        return DataLossError("mux: implausible open-frame length");
      }
      return Status::Ok();
    case kMuxFrameData:
      if (!receiver_is_agent) break;
      if (h.payload_length == 0 || h.payload_length > kMuxMaxChunk) {
        return DataLossError("mux: data chunk exceeds the frame quantum");
      }
      return Status::Ok();
    case kMuxFrameCancel:
      if (!receiver_is_agent) break;
      if (h.payload_length != 0) {
        return DataLossError("mux: cancel frame carries a payload");
      }
      return Status::Ok();
    case kMuxFrameWindowUpdate:
      if (receiver_is_agent) break;
      if (h.payload_length != 0) {
        return DataLossError("mux: window update carries a payload");
      }
      return Status::Ok();
    case kMuxFrameCompletion:
      if (receiver_is_agent) break;
      if (h.payload_length > kMuxMaxCompletionDetail) {
        return DataLossError("mux: implausible completion detail length");
      }
      return Status::Ok();
    default:
      break;
  }
  return DataLossError("mux: unexpected frame type " +
                       std::to_string(static_cast<int>(h.type)));
}

}  // namespace rr::core
