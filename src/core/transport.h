// The polymorphic transport layer: one `Transport`/`Hop` interface over the
// three placement-selected transfer mechanisms (user space, kernel space,
// network — §3.2.3), so executors move data without ever switching on the
// mode and future backends (shared-memory ring, RDMA-sim, ...) plug into the
// HopTable without touching executor code.
//
// A Transport knows how to *establish* a channel for its mode; a Hop is one
// established, cached channel between a (source, target) pair. Hops are
// internally synchronized: concurrent workflow invocations may forward over
// the same hop, and each hop serializes its own wire while taking both
// endpoint shims' exec mutexes (std::scoped_lock, so cross-pair lock order
// cannot deadlock) for the duration of a transfer.
#pragma once

#include <memory>

#include "core/endpoint.h"

namespace rr::core {

// One cached duplex channel between a source and a target function.
class Hop {
 public:
  virtual ~Hop() = default;

  virtual TransferMode mode() const = 0;

  // True when delivery and invocation are fused on the far side: the frame
  // lands at a remote NodeAgent whose worker performs Algorithm 1's
  // receive+invoke. Such hops cannot Forward (deliver-only); they Dispatch,
  // and the outcome returns through the agent's delivery callback.
  virtual bool invoke_coupled() const { return false; }

  // Delivers `region` (the source function's output) into the target
  // function's linear memory without invoking it — the fan-in building
  // block. Fails with kFailedPrecondition on invoke-coupled hops.
  virtual Result<MemoryRegion> Forward(Endpoint& source,
                                       const MemoryRegion& region,
                                       Endpoint& target,
                                       TransferTiming* timing = nullptr) = 0;

  // Forward + invoke the target once on the delivered payload: the per-hop
  // building block of chains and single-predecessor DAG nodes.
  virtual Result<InvokeOutcome> ForwardAndInvoke(Endpoint& source,
                                                 const MemoryRegion& region,
                                                 Endpoint& target,
                                                 TransferTiming* timing = nullptr);

  // Invoke-coupled dispatch: sends the source's output region as one frame
  // stamped with the per-transfer correlation `token`. The remote agent
  // receives, invokes, and reports the outcome (with the token) through its
  // delivery callback. Fails with kFailedPrecondition on local hops, whose
  // transfers complete synchronously.
  virtual Status Dispatch(Endpoint& source, const MemoryRegion& region,
                          uint64_t token, TransferTiming* timing = nullptr);

  // Invoke-coupled dispatch of a host-resident payload (a fan-in's
  // predecessor outputs merged into one frame).
  virtual Status DispatchBytes(ByteSpan payload, uint64_t token);

  // Kills the underlying wire (idempotent) without invalidating the object:
  // the HopTable calls this on eviction while other runs may still hold the
  // hop, so implementations must tolerate transfers in flight — those fail
  // with the dead channel and the object dies with its last shared owner.
  virtual void Close() {}
};

// A transport backend: establishes hops for one transfer mode.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransferMode mode() const = 0;

  // Establishes a channel between two registered endpoints. Called lazily on
  // a pair's first transfer; the returned hop is cached by the HopTable and
  // reused by every subsequent run.
  virtual Result<std::unique_ptr<Hop>> Connect(Endpoint& source,
                                               const Endpoint& target) = 0;
};

// The built-in backends (installed by HopTable's constructor).
std::unique_ptr<Transport> MakeUserSpaceTransport();
std::unique_ptr<Transport> MakeKernelTransport();
std::unique_ptr<Transport> MakeNetworkTransport();

}  // namespace rr::core
