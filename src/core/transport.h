// The polymorphic transport layer: one `Transport`/`Hop` interface over the
// three placement-selected transfer mechanisms (user space, kernel space,
// network — §3.2.3), so executors move data without ever switching on the
// mode and future backends (shared-memory ring, RDMA-sim, ...) plug into the
// HopTable without touching executor code.
//
// A Transport knows how to *establish* a channel for its mode; a Hop is one
// established, cached channel between a (source, target) pair. Hops speak
// the zero-copy payload plane (core/payload.h): a guest-resident payload
// takes the mode's classic source-side path (the single user-space copy /
// shim staging), while a host-resident payload — the shared chunk an N-way
// fan-out hands to every successor — is read zero-copy from its ref-counted
// storage, with network backends performing vectored writes over the chunks.
//
// Hops are internally synchronized: concurrent workflow invocations may
// forward over the same hop (a hop's single wire is what they serialize
// on). Callers pass the *leased* target instance into Forward — the pool
// layer routes concurrent transfers into one function onto distinct
// instances, so they proceed in parallel; each instance's exec mutex is
// taken only around the memory-plane phase, synchronizing against payload
// readers of regions still resident in that instance.
#pragma once

#include <functional>
#include <memory>

#include "core/endpoint.h"
#include "core/payload.h"

namespace rr::core {

// Wire-behavior knobs a transport applies to the hops it establishes.
// Threaded HopTable -> Transport::Connect so api::Runtime::Options can set
// them once for every channel of a workflow.
struct TransportOptions {
  // Bound on one transfer's blocking waits (header/body/ack on the network
  // plane; peer-idle timeout on the kernel plane). A dead or stalled peer
  // surfaces as kDeadlineExceeded within this bound instead of hanging the
  // transfer. Non-positive = unbounded.
  //
  // On the network plane this is an ABSOLUTE per-transfer bound, armed at
  // frame start — not a progress bound like the kernel plane's socket
  // timeouts. Size it to the largest frame you expect over the slowest
  // link (a multi-GiB frame over a slow WAN legitimately takes minutes);
  // the 30 s default comfortably covers paper-scale payloads on the
  // emulated 100 Mbps testbed.
  Nanos transfer_deadline = std::chrono::seconds(30);

  // Which dialect agent-bound hops speak. kMux (default): one multiplexed
  // connection per remote agent shared by every function and every
  // concurrent transfer — interleaved chunk frames, per-stream flow
  // control, and completion frames that surface the remote *invocation*
  // outcome through DispatchAsync's callback. kLegacy: one sequential
  // connection per (source, target) pair with delivery acks only — kept for
  // the fault-injection matrix and old peers.
  enum class AgentWire { kMux, kLegacy };
  AgentWire agent_wire = AgentWire::kMux;
};

// One cached duplex channel between a source and a target function.
class Hop {
 public:
  virtual ~Hop() = default;

  virtual TransferMode mode() const = 0;

  // True when delivery and invocation are fused on the far side: the frame
  // lands at a remote NodeAgent whose worker performs Algorithm 1's
  // receive+invoke. Such hops cannot Forward (deliver-only); they Dispatch,
  // and the outcome returns through the agent's delivery callback.
  virtual bool invoke_coupled() const { return false; }

  // Delivers `payload` into `target`'s linear memory without invoking it —
  // the fan-in building block. `target` is the instance the caller leased
  // from the target function's pool (the lease outlives the call). When
  // `into` is non-null it names a destination region of exactly
  // payload.size() bytes covered by an existing registration (one slice of a
  // fan-in gather region); otherwise the hop allocates a fresh input region.
  // Fails with kFailedPrecondition on invoke-coupled hops.
  virtual Result<MemoryRegion> Forward(const Payload& payload, Shim& target,
                                       TransferTiming* timing = nullptr,
                                       const MemoryRegion* into = nullptr) = 0;

  // Forward + invoke the leased target instance once on the delivered
  // payload: the per-hop building block of chains and single-predecessor DAG
  // nodes. The outcome's output region lives in `target` — keep the lease
  // until it is consumed.
  virtual Result<InvokeOutcome> ForwardAndInvoke(const Payload& payload,
                                                 Shim& target,
                                                 TransferTiming* timing = nullptr);

  // Invoke-coupled dispatch: sends the payload as one frame stamped with the
  // per-transfer correlation `token` (a segmented fan-in payload travels as
  // one frame, vectored over its chunks). The remote agent receives,
  // invokes, and reports the outcome (with the token) through its delivery
  // callback. Fails with kFailedPrecondition on local hops, whose transfers
  // complete synchronously.
  virtual Status Dispatch(const Payload& payload, uint64_t token,
                          TransferTiming* timing = nullptr);

  // Receives the transfer's terminal status once the far side has spoken:
  // on the mux wire, the remote *invocation* outcome (a handler failure
  // arrives here immediately); on the legacy wire, the delivery ack (the
  // invocation outcome still travels through the agent's delivery callback).
  using DispatchDoneFn = std::function<void(Status)>;

  // Completion-driven dispatch: initiates the transfer and returns without
  // waiting for the wire. Returns non-OK only when the dispatch could not be
  // initiated — `done` then never fires. On OK, `done` fires exactly once
  // (possibly before this call returns, and possibly on a reactor thread —
  // it must not block on the dispatching thread's locks). The base
  // implementation adapts synchronous hops: a blocking Dispatch, then
  // done(Ok).
  virtual Status DispatchAsync(const Payload& payload, uint64_t token,
                               TransferTiming* timing, DispatchDoneFn done);

  // False once the hop's underlying wire has died — torn down by Close, or
  // killed by a transfer that failed without a decoded ack. A failed
  // transfer on a healthy hop (a typed in-sync refusal, e.g. the remote
  // pool was exhausted) leaves healthy() true: callers must NOT evict such
  // hops, or they collapse the other transfers sharing the channel.
  // Wireless hops are always healthy.
  virtual bool healthy() const { return true; }

  // Kills the underlying wire (idempotent) without invalidating the object:
  // the HopTable calls this on eviction while other runs may still hold the
  // hop, so implementations must tolerate transfers in flight — those fail
  // with the dead channel and the object dies with its last shared owner.
  virtual void Close() {}
};

// A transport backend: establishes hops for one transfer mode.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransferMode mode() const = 0;

  // Establishes a channel between two registered endpoints. Called lazily on
  // a pair's first transfer; the returned hop is cached by the HopTable and
  // reused by every subsequent run. `options` carries the table's wire
  // options (deadlines) for the hop to apply.
  virtual Result<std::unique_ptr<Hop>> Connect(
      Endpoint& source, const Endpoint& target,
      const TransportOptions& options) = 0;
};

// The built-in backends (installed by HopTable's constructor).
std::unique_ptr<Transport> MakeUserSpaceTransport();
std::unique_ptr<Transport> MakeKernelTransport();
std::unique_ptr<Transport> MakeNetworkTransport();

}  // namespace rr::core
