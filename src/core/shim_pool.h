// ShimPool / ShimLease: the core-layer face of the per-function instance
// pool (runtime/instance_pool.h).
//
// One registered function = one ShimPool = a bounded set of warm Shim
// instances (each a full sandbox + DataAccess region registry). Executor-
// side sequences — deliver + invoke, fan-in gather, remote agent ingress —
// lease an instance for the duration of one node invocation instead of
// locking a singleton VM, so N concurrent invocations of the same function
// proceed on up to `max_instances` sandboxes in parallel. The old per-shim
// exec_mutex is gone; a pool capped at 1 instance reproduces exactly the
// serialized behavior it provided.
//
// Lease lifecycle:
//
//   pool.Lease()            blocks for a warm instance (LIFO reuse), lazily
//                           growing the pool up to max_instances
//   lease->...              exclusive use of that instance's Shim surface
//   Payload::FromGuest(     a node's output region pins the lease — the
//       std::move(lease))   instance stays out of the pool until the payload
//                           is egressed or released
//   ~ShimLease              instance returns to the pool, warm
//
// Three ways to build one:
//   Create      dedicated-VM instances (kernel / network placements)
//   CreateInVm  instances as modules of one shared WasmVm (user space);
//               replicas load under suffixed module names ("fn#1", ...)
//   Adopt       wraps a caller-owned Shim as a fixed pool of 1 — the
//               compatibility path for raw Endpoint{shim} registrations.
//               Adopt is memoized per shim, so every path that reaches the
//               same raw shim (WorkflowManager and NodeAgent, say) shares
//               ONE pool and leases still mutually exclude.
#pragma once

#include <memory>
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include <string>

#include "common/bytes.h"
#include "core/shim.h"
#include "runtime/instance_pool.h"

namespace rr::core {

class ShimPool;

// RAII exclusive hold on one pooled Shim instance. Move-only; shares
// ownership of the pool, so a lease can never outlive it.
class ShimLease {
 public:
  ShimLease() = default;
  // Hand-written moves: the defaulted ones would (a) leave the raw shim_
  // in the moved-from lease, making it claim an instance it no longer
  // holds, and (b) on assignment replace pool_ BEFORE lease_ returns the
  // old instance — destroying the pool under its own Release when this
  // lease held the last reference.
  ShimLease(ShimLease&& other) noexcept
      : pool_(std::move(other.pool_)),
        lease_(std::move(other.lease_)),
        shim_(other.shim_) {
    other.shim_ = nullptr;
  }
  ShimLease& operator=(ShimLease&& other) noexcept {
    if (this != &other) {
      Release();  // old instance returns while the old pool is still alive
      pool_ = std::move(other.pool_);
      lease_ = std::move(other.lease_);
      shim_ = other.shim_;
      other.shim_ = nullptr;
    }
    return *this;
  }

  Shim* get() const { return shim_; }
  Shim& operator*() const { return *shim_; }
  Shim* operator->() const { return shim_; }
  explicit operator bool() const { return shim_ != nullptr; }

  // Early return to the pool; the lease becomes empty.
  void Release() {
    lease_.Release();
    shim_ = nullptr;
    pool_.reset();
  }

 private:
  friend class ShimPool;
  ShimLease(std::shared_ptr<ShimPool> pool, runtime::InstancePool::Lease lease,
            Shim* shim)
      : pool_(std::move(pool)), lease_(std::move(lease)), shim_(shim) {}

  std::shared_ptr<ShimPool> pool_;
  // ShimLease IS the lease wrapper — the one type allowed to carry one.
  runtime::InstancePool::Lease lease_;  // rr-lint: allow(lease-member)
  Shim* shim_ = nullptr;
};

class ShimPool : public std::enable_shared_from_this<ShimPool> {
 public:
  // Dedicated-VM pool: every instance is a standalone shim over its own VM
  // (kernel/network placements — Fig. 4b replicated). The binary is copied
  // once and reused by lazy growth.
  static Result<std::shared_ptr<ShimPool>> Create(
      runtime::FunctionSpec spec, ByteSpan wasm_binary,
      runtime::SandboxOptions sandbox_options = {},
      runtime::PoolOptions pool_options = {});

  // Shared-VM pool: instances are modules of `vm` (user-space placement —
  // Fig. 4a replicated inside one process). The prototype loads under the
  // function's name; replicas under "name#1", "name#2", ... so the VM's
  // module table stays unique. `vm` must outlive the pool.
  static Result<std::shared_ptr<ShimPool>> CreateInVm(
      runtime::WasmVm& vm, runtime::FunctionSpec spec, ByteSpan wasm_binary,
      runtime::SandboxOptions sandbox_options = {},
      runtime::PoolOptions pool_options = {});

  // Wraps a caller-owned shim as a fixed single-instance pool (the
  // serialized pre-pool behavior). Memoized: adopting the same shim twice
  // returns the same pool. The shim must outlive the returned pool.
  static Result<std::shared_ptr<ShimPool>> Adopt(Shim* shim);

  // Installs the function's logic on every current instance and remembers it
  // for instances created by lazy growth. Control plane: must not race
  // in-flight leases.
  Status Deploy(runtime::NativeHandler handler);

  // Leases a warm instance; blocks (bounded) when all are out.
  Result<ShimLease> Lease();

  // The identity instance (always exists): name/spec/location checks and
  // legacy single-instance access go through it.
  Shim* prototype() const { return prototype_; }
  const runtime::FunctionSpec& spec() const { return prototype_->spec(); }
  const std::string& name() const { return prototype_->name(); }

  // Invocations summed over every instance of the pool.
  uint64_t invocations() const;

  runtime::PoolMetrics metrics() const { return pool_->metrics(); }
  size_t capacity() const { return pool_->capacity(); }

 private:
  struct PooledShim : runtime::InstancePool::Instance {
    explicit PooledShim(std::unique_ptr<Shim> instance)
        : owned(std::move(instance)), shim(owned.get()) {}
    explicit PooledShim(Shim* adopted) : shim(adopted) {}

    std::unique_ptr<Shim> owned;  // null for adopted shims
    Shim* shim = nullptr;
  };

  ShimPool() = default;

  // Creates one instance through the configured mode and deploys the
  // remembered handler, if any. Lazy growth runs it outside the pool lock,
  // concurrently with other growers.
  Result<std::unique_ptr<runtime::InstancePool::Instance>> MakeInstance();

  static Result<std::shared_ptr<ShimPool>> Finish(
      std::shared_ptr<ShimPool> pool, runtime::PoolOptions pool_options);

  // Factory configuration (immutable after construction).
  runtime::FunctionSpec spec_;
  Bytes binary_;
  runtime::SandboxOptions sandbox_options_;
  runtime::WasmVm* vm_ = nullptr;  // non-null = shared-VM mode
  Shim* adopted_ = nullptr;        // non-null = adopted single instance

  // The deployed handler, replayed onto lazily grown instances. The mutex
  // only keeps the std::function read/write untorn; it does NOT close the
  // window where a Deploy racing an in-flight growth misses the growing
  // instance — Deploy is control plane and must complete before the first
  // Lease (see Deploy's contract).
  mutable Mutex handler_mutex_;
  runtime::NativeHandler handler_ RR_GUARDED_BY(handler_mutex_);

  std::unique_ptr<runtime::InstancePool> pool_;
  // Set by the first (warm-set) MakeInstance, before the pool is shared;
  // immutable afterwards, so concurrent growers read it freely.
  Shim* prototype_ = nullptr;
  std::atomic<size_t> replicas_created_{0};  // names the next module
};

}  // namespace rr::core
