// Placement-driven communication-mode selection.
//
// "Roadrunner optimizes communication regardless of the scheduler's
// decisions" (§2.2): the orchestrator places functions wherever it likes;
// given the resulting placement, the shim picks the cheapest mode —
// user space within one VM, kernel space within one host, network across
// hosts (§3.2.3, §7 Benefits and Trade-Offs).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/shim.h"
#include "core/shim_pool.h"

namespace rr::core {

enum class TransferMode { kUserSpace, kKernelSpace, kNetwork };

std::string_view TransferModeName(TransferMode mode);

// Where a function instance lives, as the orchestrator reports it.
struct Location {
  std::string node;  // host identity
  std::string vm;    // Wasm VM identity within the node ("" = dedicated VM)

  bool SameVm(const Location& other) const {
    return node == other.node && !vm.empty() && vm == other.vm;
  }
  bool SameNode(const Location& other) const { return node == other.node; }
};

// Picks the cheapest mode the placement allows (Table of §7 trade-offs).
TransferMode SelectMode(const Location& source, const Location& target);

// One NodeAgent ingress address. Replica 0 of every endpoint is its
// (host, port) pair; additional replicas — other agents serving the same
// function — ride in Endpoint::failover.
struct AgentAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

// A registered function: its instance pool plus placement and (for remote
// placements) the ingress address of its node. A non-zero port means the
// function is reached through its node's NodeAgent ingress; port 0 means
// transfers may establish an in-process loopback hop on demand.
//
// `shim` is the function's identity/prototype instance — name, spec, and
// trust checks read it. `pool` is the per-function instance pool every
// invocation leases from; registering a bare Endpoint{shim} (the pre-pool
// API) adopts the shim as a fixed pool of 1, which reproduces the old
// serialized behavior. Setting `pool` alone is enough: `shim` defaults to
// the pool's prototype.
struct Endpoint {
  Shim* shim = nullptr;
  std::shared_ptr<ShimPool> pool;
  Location location;
  std::string host = "127.0.0.1";  // network-mode ingress (replica 0)
  uint16_t port = 0;

  // Failover replicas: additional agent ingresses serving this function.
  // The executor's resilience engine dispatches to replica 0 first and
  // fails over in declaration order (wrapping) when a replica's breaker is
  // open or its retry attempts are spent.
  std::vector<AgentAddress> failover;

  size_t replica_count() const { return 1 + failover.size(); }
  AgentAddress replica_address(size_t index) const {
    return index == 0 ? AgentAddress{host, port} : failover[index - 1];
  }

  // Leases an instance for one node invocation (see ShimPool::Lease). A
  // pool-less endpoint adopts its shim per call (memoized, so every call
  // reaches the same pool), so endpoints built outside a WorkflowManager
  // keep working — without mutating the endpoint, which may be shared.
  Result<ShimLease> Lease();
};

}  // namespace rr::core
