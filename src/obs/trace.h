// Invocation tracing: every api::Runtime::Submit mints a trace id, RAII
// spans wrap the stages of a run (node invoke, guest egress, hop transfer,
// ack wait, remote ingress + invoke), and the trace context rides the
// NodeAgent frame header so a remote chain yields ONE stitched trace across
// both processes.
//
// Design points:
//
//   * The active SpanContext is thread-local. Opening a span installs its
//     context (parenting nested spans and the frames sent while it is open)
//     and restores the previous one when it ends. NodeAgent installs the
//     context it decodes from a frame header around the remote
//     receive+invoke, which is what stitches the two processes together.
//   * Tracing is globally off by default. A disabled span costs one
//     monotonic clock read (its Elapsed()/End() still serve the stats
//     plane — telemetry::EdgeSample latencies are derived from spans, not
//     separate timers) and records nothing.
//   * Finished spans land in a bounded in-process ring buffer; when it
//     wraps, the oldest spans are overwritten (dropped() counts them).
//     Export is Chrome trace-event JSON — load it in Perfetto or
//     chrome://tracing.
//   * Trace/span ids are 64-bit, non-zero, and process-salted (pid mixed
//     in), so ids minted by two processes of one deployment never collide.
//
// Log correlation: installing a span context publishes the trace id to the
// logger's thread-local slot (common/log.h), so every RR_LOG line emitted
// under a span carries its trace id.
#pragma once

#include <atomic>
#include <cstdint>
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"

namespace rr::obs {

struct SpanContext {
  uint64_t trace_id = 0;  // 0 = no active trace
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

// The calling thread's active context ({0,0} when none).
SpanContext CurrentSpanContext();

// Fresh process-salted non-zero ids.
uint64_t NewTraceId();
uint64_t NewSpanId();

bool TracingEnabled();
void SetTracingEnabled(bool enabled);

// One finished span, as stored in the ring buffer.
struct SpanRecord {
  std::string name;
  const char* category = "";  // static-duration strings only
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  int pid = 0;
  int tid = 0;  // small per-process thread tag (common/log.h)
  TimePoint start{};
  Nanos duration{0};
};

// Bounded ring of finished spans.
class Tracer {
 public:
  static Tracer& Get();

  // Applies to subsequently recorded spans; existing ones are dropped.
  void SetCapacity(size_t capacity);

  void Record(SpanRecord record);

  // Oldest-first copy of the buffered spans.
  std::vector<SpanRecord> Snapshot() const;

  void Clear();

  uint64_t recorded() const;  // all-time
  uint64_t dropped() const;   // overwritten by ring wrap

 private:
  Tracer() = default;

  mutable Mutex mutex_;
  std::vector<SpanRecord> ring_ RR_GUARDED_BY(mutex_);
  size_t capacity_ RR_GUARDED_BY(mutex_) = 4096;
  size_t next_ RR_GUARDED_BY(mutex_) = 0;
  uint64_t recorded_ RR_GUARDED_BY(mutex_) = 0;
};

// Installs `context` as the thread's active context for the current scope
// (and mirrors the trace id into the logger's slot). Used where a context
// arrives from outside the thread: the runtime driver entering a submitted
// run, the NodeAgent worker entering a frame's receive+invoke.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(SpanContext context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  SpanContext previous_;
};

// RAII span. Always usable as a timer (Elapsed/End return wall time, which
// the telemetry plane consumes); records into the Tracer and participates
// in context propagation only while tracing is enabled.
class Span {
 public:
  Span(const char* category, std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the span now (idempotent; the destructor calls it) and returns its
  // duration. The first call fixes the recorded duration.
  Nanos End();

  // Wall time since the span opened; does not end it.
  Nanos Elapsed() const { return Now() - start_; }

  // This span's ids while recording; the ambient context otherwise.
  SpanContext context() const { return ctx_; }

 private:
  std::string name_;
  const char* category_;
  SpanContext ctx_{};
  uint64_t parent_span_id_ = 0;
  SpanContext previous_{};
  TimePoint start_{};
  Nanos duration_{0};
  bool recording_ = false;
  bool ended_ = false;
};

// The Tracer's buffered spans as Chrome trace-event JSON (Perfetto-loadable):
// {"traceEvents":[{"ph":"X","name",...,"args":{"trace_id",...}}]}.
std::string ExportChromeTrace();

}  // namespace rr::obs

// Guarded span for hot-path sites that never consume the duration: when
// tracing is off the site costs one relaxed atomic load — the name
// expression is not evaluated and no clock is read. `var` is a
// std::optional<Span>; sites that do read the time use a plain Span (or a
// Stopwatch fallback), since a disabled plain Span still serves as a timer.
#define RR_TRACE_SPAN(var, category, name_expr)   \
  std::optional<rr::obs::Span> var;               \
  if (rr::obs::TracingEnabled()) {                \
    var.emplace((category), (name_expr));         \
  }
