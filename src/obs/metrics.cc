#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace rr::obs {

namespace internal {

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

namespace {

// Shortest round-trippable representation; integral values print without an
// exponent so greps for counter values stay simple.
std::string FormatValue(double value) {
  char buffer[64];
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  }
  return buffer;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// {key="value",...} with keys sorted; empty labels render as "".
std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  out.push_back('}');
  return out;
}

// Labels with one entry appended — for histogram `le` buckets.
std::string RenderLabelsWith(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return RenderLabels(extended);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (Shard& shard : shards_) {
    shard.counts =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      snapshot.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (const uint64_t count : snapshot.counts) snapshot.count += count;
  return snapshot;
}

const std::vector<double>& DefaultLatencyBucketsSeconds() {
  static const std::vector<double> buckets = [] {
    std::vector<double> bounds;
    for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
      bounds.push_back(decade);
      bounds.push_back(decade * 2);
      bounds.push_back(decade * 5);
    }
    bounds.push_back(10.0);
    return bounds;
  }();
  return buckets;
}

const std::vector<double>& DefaultSizeBuckets() {
  static const std::vector<double> buckets = [] {
    std::vector<double> bounds;
    for (double b = 1024.0; b <= 256.0 * 1024 * 1024; b *= 4.0) {
      bounds.push_back(b);
    }
    return bounds;
  }();
  return buckets;
}

Registry& Registry::Get() {
  static Registry* registry = new Registry();  // never destroyed: metric
  return *registry;                            // pointers outlive static dtors
}

Registry::Series* Registry::GetSeries(std::string_view name,
                                      std::string_view help, Kind kind,
                                      Labels labels,
                                      const std::vector<double>& bounds) {
  std::sort(labels.begin(), labels.end());
  const std::string series_key = RenderLabels(labels);
  MutexLock lock(mutex_);
  auto family_it = families_.find(name);
  if (family_it == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = std::string(help);
    if (kind == Kind::kHistogram) {
      family.bounds = bounds.empty() ? DefaultLatencyBucketsSeconds() : bounds;
    }
    family_it = families_.emplace(std::string(name), std::move(family)).first;
  }
  Family& family = family_it->second;
  if (family.kind != kind) return nullptr;
  auto series_it = family.series.find(series_key);
  if (series_it == family.series.end()) {
    Series series;
    series.labels = std::move(labels);
    switch (kind) {
      case Kind::kCounter:
        series.counter.reset(new Counter());
        break;
      case Kind::kGauge:
        series.gauge.reset(new Gauge());
        break;
      case Kind::kHistogram:
        series.histogram.reset(new Histogram(family.bounds));
        break;
    }
    series_it = family.series.emplace(series_key, std::move(series)).first;
  }
  return &series_it->second;
}

Counter* Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  Series* series =
      GetSeries(name, help, Kind::kCounter, std::move(labels), {});
  return series != nullptr ? series->counter.get() : nullptr;
}

Gauge* Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels) {
  Series* series = GetSeries(name, help, Kind::kGauge, std::move(labels), {});
  return series != nullptr ? series->gauge.get() : nullptr;
}

Histogram* Registry::histogram(std::string_view name, std::string_view help,
                               Labels labels,
                               const std::vector<double>& bounds) {
  Series* series =
      GetSeries(name, help, Kind::kHistogram, std::move(labels), bounds);
  return series != nullptr ? series->histogram.get() : nullptr;
}

std::string Registry::RenderPrometheus() const {
  MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    switch (family.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        for (const auto& [key, series] : family.series) {
          out += name + key + " " +
                 FormatValue(static_cast<double>(series.counter->Value())) +
                 "\n";
        }
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [key, series] : family.series) {
          out += name + key + " " +
                 FormatValue(static_cast<double>(series.gauge->Value())) +
                 "\n";
        }
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        for (const auto& [key, series] : family.series) {
          const Histogram::Snapshot snapshot = series.histogram->Snap();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < snapshot.bounds.size(); ++i) {
            cumulative += snapshot.counts[i];
            out += name + "_bucket" +
                   RenderLabelsWith(series.labels, "le",
                                    FormatValue(snapshot.bounds[i])) +
                   " " + FormatValue(static_cast<double>(cumulative)) + "\n";
          }
          out += name + "_bucket" +
                 RenderLabelsWith(series.labels, "le", "+Inf") + " " +
                 FormatValue(static_cast<double>(snapshot.count)) + "\n";
          out += name + "_sum" + key + " " + FormatValue(snapshot.sum) + "\n";
          out += name + "_count" + key + " " +
                 FormatValue(static_cast<double>(snapshot.count)) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace rr::obs
