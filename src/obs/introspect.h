// Introspection endpoint: a small HTTP server (on http::EpollServer, the
// same event loop that fronts the gateway) exposing the process's
// observability state.
//
//   GET /metrics  -> Prometheus text exposition (obs::Registry)
//   GET /healthz  -> JSON liveness: {"status":"ok","uptime_seconds":...}
//                    plus any caller-supplied fields (e.g. in-flight runs)
//   GET /trace    -> Chrome trace-event JSON of the span ring (obs::Tracer)
//
// Binds 127.0.0.1 only (never another interface); the endpoint is
// unauthenticated and meant for local scrapes and debugging, not the open
// network. The public face is the gateway, which exposes nothing of this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "http/epoll_server.h"

namespace rr::obs {

class IntrospectionServer {
 public:
  struct Options {
    uint16_t port = 0;  // 0 = ephemeral; read back via port()

    // Extra key/value pairs merged into the /healthz JSON object on every
    // request (values are emitted as JSON numbers). Optional.
    std::function<std::vector<std::pair<std::string, int64_t>>()>
        health_fields;
  };

  static Result<std::unique_ptr<IntrospectionServer>> Start(Options options);

  uint16_t port() const { return server_->port(); }

  // Stops the underlying HTTP server; the destructor also does this.
  void Shutdown() { server_->Stop(); }

 private:
  explicit IntrospectionServer(std::unique_ptr<http::EpollServer> server)
      : server_(std::move(server)) {}

  std::unique_ptr<http::EpollServer> server_;
};

}  // namespace rr::obs
