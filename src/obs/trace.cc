#include "obs/trace.h"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>

#include "common/log.h"

namespace rr::obs {
namespace {

std::atomic<bool> g_tracing_enabled{false};
thread_local SpanContext t_context;

// splitmix64: decorrelates the (pid, counter, clock) mix into ids that are
// unique per process and effectively unique across the processes of one
// deployment.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t NewId() {
  static const uint64_t salt =
      Mix(static_cast<uint64_t>(::getpid()) ^
          static_cast<uint64_t>(Now().time_since_epoch().count()));
  static std::atomic<uint64_t> counter{1};
  const uint64_t id =
      Mix(salt ^ (counter.fetch_add(1, std::memory_order_relaxed) << 1));
  return id != 0 ? id : 1;
}

void InstallContext(SpanContext context) {
  t_context = context;
  SetLogTraceId(context.trace_id);
}

void AppendJsonEscaped(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
}

}  // namespace

SpanContext CurrentSpanContext() { return t_context; }

uint64_t NewTraceId() { return NewId(); }
uint64_t NewSpanId() { return NewId(); }

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // never destroyed: spans may be
  return *tracer;                        // recorded from static teardown
}

void Tracer::SetCapacity(size_t capacity) {
  MutexLock lock(mutex_);
  capacity_ = capacity > 0 ? capacity : 1;
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
}

void Tracer::Record(SpanRecord record) {
  MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  MutexLock lock(mutex_);
  std::vector<SpanRecord> spans;
  spans.reserve(ring_.size());
  // next_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    spans.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return spans;
}

void Tracer::Clear() {
  MutexLock lock(mutex_);
  ring_.clear();
  next_ = 0;
}

uint64_t Tracer::recorded() const {
  MutexLock lock(mutex_);
  return recorded_;
}

uint64_t Tracer::dropped() const {
  MutexLock lock(mutex_);
  return recorded_ >= ring_.size() ? recorded_ - ring_.size() : 0;
}

ScopedTraceContext::ScopedTraceContext(SpanContext context)
    : previous_(t_context) {
  InstallContext(context);
}

ScopedTraceContext::~ScopedTraceContext() { InstallContext(previous_); }

Span::Span(const char* category, std::string name)
    : name_(std::move(name)), category_(category) {
  if (TracingEnabled()) {
    recording_ = true;
    previous_ = t_context;
    ctx_.trace_id =
        previous_.valid() ? previous_.trace_id : NewTraceId();
    ctx_.span_id = NewSpanId();
    parent_span_id_ = previous_.span_id;
    InstallContext(ctx_);
  } else {
    ctx_ = t_context;
  }
  start_ = Now();
}

Span::~Span() { End(); }

Nanos Span::End() {
  if (ended_) return duration_;
  ended_ = true;
  duration_ = Now() - start_;
  if (!recording_) return duration_;
  InstallContext(previous_);
  SpanRecord record;
  record.name = std::move(name_);
  record.category = category_;
  record.trace_id = ctx_.trace_id;
  record.span_id = ctx_.span_id;
  record.parent_span_id = parent_span_id_;
  record.pid = static_cast<int>(::getpid());
  record.tid = CurrentThreadTag();
  record.start = start_;
  record.duration = duration_;
  Tracer::Get().Record(std::move(record));
  return duration_;
}

std::string ExportChromeTrace() {
  const std::vector<SpanRecord> spans = Tracer::Get().Snapshot();
  std::string out = "{\"traceEvents\":[";
  char buffer[256];
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i != 0) out.push_back(',');
    out += "{\"ph\":\"X\",\"name\":\"";
    AppendJsonEscaped(out, span.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, span.category);
    // ts/dur are microseconds; ts is on the process's monotonic clock, which
    // co-located processes share, so loopback multi-process traces line up.
    std::snprintf(
        buffer, sizeof(buffer),
        "\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"trace_id\":\"%016" PRIx64 "\",\"span_id\":\"%016" PRIx64
        "\",\"parent_span_id\":\"%016" PRIx64 "\"}}",
        span.pid, span.tid,
        static_cast<double>(span.start.time_since_epoch().count()) / 1000.0,
        static_cast<double>(span.duration.count()) / 1000.0, span.trace_id,
        span.span_id, span.parent_span_id);
    out += buffer;
  }
  out += "]}";
  return out;
}

}  // namespace rr::obs
