// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with per-thread-sharded hot-path recording.
//
// The payload plane records metrics from nanosecond-scale paths (channel
// sends, pool acquires, scheduler dispatch), so recording must never take a
// lock or bounce a shared cache line between cores:
//
//   * Counter and Histogram shard their state across kMetricShards
//     cache-line-aligned slots; a thread records into its own slot (threads
//     are assigned shards round-robin on first use) with relaxed atomic
//     adds — an increment is one uncontended RMW in the common case.
//   * Reads (Value/Snapshot/RenderPrometheus) sum the shards. Totals are
//     exact: every recorded increment lands in exactly one shard, scrapes
//     just observe a momentary interleaving.
//   * Gauge is a single atomic — gauges track levels (in-flight runs, queue
//     depth), which are written from slow paths.
//
// Registration is once-per-site and cached:
//
//   static obs::Counter* acks = obs::Registry::Get().counter(
//       "rr_wire_error_acks_total", "error acks sent by receivers");
//   acks->Inc();
//
// The registry keys a metric family by name; series within a family by
// label set (Prometheus data model). Pointers are stable for the process
// lifetime — metrics are never unregistered.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rr::obs {

// Label set of one series, rendered as {key="value",...}. Order is
// normalized (sorted by key) so equal sets always name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

inline constexpr size_t kMetricShards = 16;

namespace internal {
// Round-robin shard assignment: cached per thread, spreads hot threads
// evenly instead of hashing thread ids (which can collide arbitrarily).
size_t ThisThreadShard();
}  // namespace internal

// Monotonically increasing count. Inc is lock-free and contention-free
// across threads on distinct shards.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& shard : shards_) {
      sum += shard.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  friend class Registry;
  Counter() = default;

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

// A level that can go up and down (in-flight runs, live workers).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: bucket upper bounds are set at registration and
// never change, so Observe is a branchless-ish scan (bucket counts are
// small) plus two relaxed adds into the thread's shard. Totals are exact —
// the contention test hammers one histogram from 16 threads and checks the
// snapshot count/sum to the last increment.
class Histogram {
 public:
  struct Snapshot {
    std::vector<double> bounds;    // upper bounds, ascending
    std::vector<uint64_t> counts;  // per bucket; one extra +Inf slot at back
    double sum = 0;
    uint64_t count = 0;
  };

  void Observe(double value) {
    Shard& shard = shards_[internal::ThisThreadShard()];
    size_t bucket = bounds_.size();  // +Inf
    for (size_t i = 0; i < bounds_.size(); ++i) {
      if (value <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  Snapshot Snap() const;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<double> sum{0};
  };
  const std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

// Default latency buckets in seconds: a 1-2-5 decade ladder from 1 us to
// 10 s, matching the spread between a user-space copy and a shaped-link
// remote transfer.
const std::vector<double>& DefaultLatencyBucketsSeconds();

// Byte-size buckets: powers of 4 from 1 KiB to 256 MiB.
const std::vector<double>& DefaultSizeBuckets();

class Registry {
 public:
  // The process-wide registry. Instrumentation sites cache the returned
  // pointers in function-local statics.
  static Registry& Get();

  // Returns the series for (name, labels), creating family and series on
  // first use. `help` is recorded on first registration of the family.
  // Returns nullptr if `name` is already registered as a different metric
  // kind — a programming error surfaced without crashing the data path.
  Counter* counter(std::string_view name, std::string_view help = "",
                   Labels labels = {});
  Gauge* gauge(std::string_view name, std::string_view help = "",
               Labels labels = {});
  // `bounds` must be ascending; applied on the family's first registration
  // (later series of the same family share them).
  Histogram* histogram(std::string_view name, std::string_view help = "",
                       Labels labels = {},
                       const std::vector<double>& bounds = {});

  // Prometheus text exposition format (0.0.4): families sorted by name,
  // histogram series as cumulative _bucket/_sum/_count.
  std::string RenderPrometheus() const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<double> bounds;               // histograms only
    std::map<std::string, Series> series;     // keyed by rendered label set
  };

  Series* GetSeries(std::string_view name, std::string_view help, Kind kind,
                    Labels labels, const std::vector<double>& bounds);

  mutable Mutex mutex_;
  std::map<std::string, Family, std::less<>> families_ RR_GUARDED_BY(mutex_);
};

}  // namespace rr::obs
