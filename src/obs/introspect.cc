#include "obs/introspect.h"

#include <cstdio>

#include "common/bytes.h"
#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rr::obs {
namespace {

http::Response TextResponse(int status, const std::string& reason,
                            std::string content_type, std::string body) {
  http::Response response;
  response.status_code = status;
  response.reason = reason;
  response.headers["Content-Type"] = std::move(content_type);
  response.body = ToBytes(body);
  return response;
}

std::string HealthJson(const IntrospectionServer::Options& options,
                       TimePoint started) {
  const double uptime =
      static_cast<double>((Now() - started).count()) / 1e9;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", uptime);
  std::string body = "{\"status\":\"ok\",\"uptime_seconds\":";
  body += buffer;
  if (options.health_fields) {
    for (const auto& [key, value] : options.health_fields()) {
      std::snprintf(buffer, sizeof(buffer), ",\"%s\":%lld", key.c_str(),
                    static_cast<long long>(value));
      body += buffer;
    }
  }
  body += "}";
  return body;
}

}  // namespace

Result<std::unique_ptr<IntrospectionServer>> IntrospectionServer::Start(
    Options options) {
  const TimePoint started = Now();
  const uint16_t port = options.port;
  // Scrapes are rendered inline on the event loop: each handler is a pure
  // in-memory snapshot (no I/O, no blocking), well inside the loop's
  // non-blocking handler contract.
  auto handler = [options = std::move(options), started](
                     http::Request&& request,
                     http::EpollServer::Responder responder) {
    auto answer = [&responder](http::Response&& response) {
      responder.Send(http::StreamResponse::From(std::move(response)));
    };
    if (request.method != "GET") {
      answer(TextResponse(405, "Method Not Allowed", "text/plain",
                          "method not allowed\n"));
    } else if (request.target == "/metrics") {
      answer(TextResponse(200, "OK",
                          "text/plain; version=0.0.4; charset=utf-8",
                          Registry::Get().RenderPrometheus()));
    } else if (request.target == "/healthz") {
      answer(TextResponse(200, "OK", "application/json",
                          HealthJson(options, started)));
    } else if (request.target == "/trace") {
      answer(TextResponse(200, "OK", "application/json", ExportChromeTrace()));
    } else {
      answer(TextResponse(404, "Not Found", "text/plain", "not found\n"));
    }
  };
  http::EpollServer::Options server_options;
  server_options.port = port;
  server_options.bind_address = osal::BindAddress::kLoopback;
  RR_ASSIGN_OR_RETURN(
      auto server,
      http::EpollServer::Start(server_options, std::move(handler)));
  return std::unique_ptr<IntrospectionServer>(
      new IntrospectionServer(std::move(server)));
}

}  // namespace rr::obs
