// rr::api::Runtime — the unified asynchronous invocation API.
//
// One façade over the whole middleware: register endpoints once, then
// Submit(ChainSpec | DagSpec, input) returns an Invocation handle
// immediately. Any number of invocations proceed concurrently over the
// shared hop cache (established channels are reused across runs and across
// in-flight invocations), the shared DAG worker pool, and the polymorphic
// Transport layer — callers never touch WorkflowManager, dag::DagExecutor,
// or per-hop plumbing directly (the deprecated synchronous entries,
// WorkflowManager::RunChain and the direct DagExecutor::Execute, are gone;
// Submit is the only way to run a workflow).
//
// Payloads ride the zero-copy plane end to end: Submit(spec, rr::Buffer)
// shares the caller's chunks with every in-flight run (no per-submit copy —
// submitting the same 64 MiB input N times costs one buffer), and Wait()
// returns the sink outputs as a Buffer whose chunks are the sinks' egressed
// bytes, concatenated by reference.
//
//   api::Runtime rt("wf");
//   rt.Register(endpoint_a); rt.Register(endpoint_b); ...
//   auto inv = rt.Submit(api::ChainSpec{{"a", "b", "c"}}, input);
//   ... // submit more; all run concurrently
//   const Result<rr::Buffer>& out = (*inv)->Wait();
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/node_agent.h"
#include "core/workflow.h"
#include "dag/dag.h"
#include "dag/executor.h"
#include "obs/introspect.h"
#include "telemetry/metrics.h"

namespace rr::api {

// A linear pipeline: f1 -> f2 -> ... -> fn (every name registered).
struct ChainSpec {
  std::vector<std::string> functions;
};

// An arbitrary fan-out/fan-in workflow, validated by dag::DagBuilder.
struct DagSpec {
  dag::Dag dag;
  // Per-workflow failure-recovery override: when set, this run retries its
  // remote dispatches under THIS policy instead of the runtime-wide
  // Options::resilience default (set one with enabled=false to opt a
  // latency-critical workflow out of retries entirely).
  std::optional<resilience::ResiliencePolicy> resilience;
};

// Wall-clock accounting of one submitted run.
struct RunStats {
  Nanos queued{0};              // Submit() -> execution start
  Nanos total{0};               // execution start -> completion
  telemetry::DagRunStats dag;   // per-edge samples of the run
};

// A future-like handle to one submitted run. Thread-safe; share freely.
class Invocation {
 public:
  uint64_t id() const { return id_; }

  // The trace id Submit minted for this run (0 when tracing was off at
  // submit time). Every span of the run — including remote-agent spans on
  // other processes — carries this id; grep it in logs, find it in /trace.
  uint64_t trace_id() const { return trace_id_; }

  bool Done() const;

  // Blocks until the run completes and returns its result: the sink
  // functions' outputs, concatenated in declaration order (by chunk sharing
  // — no merge copy). The reference stays valid for the Invocation's
  // lifetime.
  const Result<rr::Buffer>& Wait();

  // DEPRECATED(one release): the Bytes compatibility shim. Materializes the
  // buffer result into a contiguous vector (one copy, cached). New code
  // should consume Wait()'s buffer.
  const Result<Bytes>& WaitBytes();

  // Bounded wait; true when the run completed within `timeout`.
  bool WaitFor(Nanos timeout);

  // Registers a completion callback: runs exactly once, on the completing
  // driver thread right after the result publishes — or inline, on the
  // caller's thread, when the run is already done. This is the event-driven
  // counterpart to Wait(): the gateway parks a Responder in one of these
  // instead of parking a thread. Callbacks must not block and must not call
  // back into Wait() on this invocation (it is already done when they run;
  // reading the result directly is fine).
  void NotifyDone(std::function<void()> callback);

  // Valid once Done() — meaningless while the run is in flight. Reads
  // stats_ without mutex_: publication happens-before any caller that
  // observed Done() (both touch mutex_), so the unlocked read is safe once
  // the contract is honored; the analysis cannot see that ordering.
  const RunStats& stats() const RR_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }

 private:
  friend class Runtime;
  Invocation(uint64_t id, dag::Dag dag, rr::Buffer input)
      : id_(id), dag_(std::move(dag)), input_(std::move(input)) {}

  const uint64_t id_;
  dag::Dag dag_;
  rr::Buffer input_;
  // The DagSpec's per-run retry-policy override, carried to the executor.
  std::optional<resilience::ResiliencePolicy> resilience_;
  uint64_t trace_id_ = 0;
  TimePoint submitted_{};

  mutable Mutex mutex_;
  CondVar cv_;
  bool done_ RR_GUARDED_BY(mutex_) = false;
  Result<rr::Buffer> result_ RR_GUARDED_BY(mutex_){rr::Buffer{}};
  // WaitBytes's lazy cache.
  std::optional<Result<Bytes>> bytes_result_ RR_GUARDED_BY(mutex_);
  RunStats stats_ RR_GUARDED_BY(mutex_);
  std::vector<std::function<void()>> done_callbacks_ RR_GUARDED_BY(mutex_);
};

class Runtime {
 public:
  struct Options {
    // Invocations driven concurrently (queued beyond this). 0 = one driver
    // per hardware thread, at least 8 so a burst of submissions overlaps
    // even on small hosts.
    size_t max_in_flight = 0;
    // DAG scheduler worker pool, shared by every in-flight run. 0 = one per
    // hardware thread.
    size_t dag_workers = 0;
    // BACKSTOP on one remote (NodeAgent) edge: dispatch to delivery
    // callback, including the remote invoke. On the default mux wire a
    // remote failure arrives as a completion frame and fails the edge
    // immediately — this deadline only fires when the far side goes fully
    // silent (dead agent, lost frame, legacy-wire invoke failure).
    Nanos remote_deadline = std::chrono::seconds(60);
    // Bound on one wire transfer's blocking waits (header/body/ack), applied
    // to every hop this runtime establishes (core::TransportOptions). A
    // receiver that dies mid-body or never acks fails the edge with
    // kDeadlineExceeded within this bound. Non-positive = unbounded.
    Nanos transfer_deadline = std::chrono::seconds(30);
    // Enables invocation tracing process-wide: Submit mints a trace id per
    // run, spans record into the obs::Tracer ring, frames carry the trace
    // context to remote agents. Off by default — the disabled instrumentation
    // costs one clock read per span site.
    bool tracing = false;
    // Ring capacity for finished spans when tracing is on (0 = keep the
    // tracer's current capacity).
    size_t trace_capacity = 0;
    // Serves GET /metrics (Prometheus text), /healthz (JSON), and /trace
    // (Chrome trace JSON) on 127.0.0.1:introspection_port. Off by default.
    bool serve_introspection = false;
    uint16_t introspection_port = 0;  // 0 = ephemeral; read introspection_port()
    // Failure-recovery plane (resilience/policy.h): per-edge retries with
    // backoff, per-replica circuit breakers, and agent failover. Disabled by
    // default (resilience.enabled = false) — enabling it also arms the hop
    // table's breakers with resilience.breaker. A DagSpec may override the
    // retry policy per run; breakers are runtime-wide.
    resilience::ResiliencePolicy resilience;
  };

  explicit Runtime(std::string workflow);
  Runtime(std::string workflow, Options options);

  // Drains: blocks until every submitted invocation has completed.
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Control plane. Not safe to call while a run uses the affected endpoint.
  Status Register(core::Endpoint endpoint);
  Status Unregister(const std::string& name);

  // Submits a run and returns its handle immediately. The Buffer overloads
  // share the caller's chunks — zero copies at Submit, however many runs the
  // same buffer feeds; the ByteSpan overloads copy once into the plane so
  // the caller's span may be reused at once. Specs are validated here (shape
  // + every function registered), so a returned handle always corresponds to
  // a run that will execute.
  Result<std::shared_ptr<Invocation>> Submit(const ChainSpec& spec,
                                             rr::Buffer input);
  Result<std::shared_ptr<Invocation>> Submit(const DagSpec& spec,
                                             rr::Buffer input);
  Result<std::shared_ptr<Invocation>> Submit(const ChainSpec& spec,
                                             ByteSpan input);
  Result<std::shared_ptr<Invocation>> Submit(const DagSpec& spec,
                                             ByteSpan input);

  // Delivery callback to wire into NodeAgent::RegisterFunction for every
  // function reached through a remote agent ingress.
  core::NodeAgent::DeliveryCallback DeliverySink();

  // The underlying registry + hop cache (control plane, telemetry, tests).
  core::WorkflowManager& manager() { return manager_; }

  size_t in_flight() const;

  // The introspection endpoint's bound port; 0 when not serving (option off,
  // or the bind failed — which is logged, not fatal).
  uint16_t introspection_port() const {
    return introspection_ != nullptr ? introspection_->port() : 0;
  }

 private:
  Result<std::shared_ptr<Invocation>> Enqueue(
      dag::Dag dag, rr::Buffer input,
      std::optional<resilience::ResiliencePolicy> resilience = std::nullopt);
  void DriverLoop();

  core::WorkflowManager manager_;
  dag::DagExecutor executor_;
  // Reset at the top of the destructor, before anything else tears down:
  // the request handler reads in_flight() off this runtime.
  std::unique_ptr<obs::IntrospectionServer> introspection_;

  mutable Mutex mutex_;
  CondVar work_cv_;
  std::deque<std::shared_ptr<Invocation>> queue_ RR_GUARDED_BY(mutex_);
  size_t executing_ RR_GUARDED_BY(mutex_) = 0;
  bool stopping_ RR_GUARDED_BY(mutex_) = false;
  std::atomic<uint64_t> next_id_{1};
  std::vector<std::thread> drivers_;
};

}  // namespace rr::api
