#include "api/runtime.h"

#include <algorithm>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rr::api {
namespace {

obs::Counter& SubmitTotal() {
  static obs::Counter* counter = obs::Registry::Get().counter(
      "rr_submit_total", "Runs accepted by api::Runtime::Submit");
  return *counter;
}

obs::Gauge& InFlightRuns() {
  static obs::Gauge* gauge = obs::Registry::Get().gauge(
      "rr_inflight_runs", "Submitted runs not yet completed (queued + executing)");
  return *gauge;
}

obs::Histogram& SubmitLatency() {
  static obs::Histogram* histogram = obs::Registry::Get().histogram(
      "rr_submit_latency_seconds",
      "Submit-to-completion latency of a run (queue wait included)");
  return *histogram;
}

// Eager registration: a scrape right after startup sees the submit series
// at zero instead of missing.
const bool g_api_metrics_registered = [] {
  SubmitTotal();
  InFlightRuns();
  SubmitLatency();
  return true;
}();

}  // namespace

bool Invocation::Done() const {
  MutexLock lock(mutex_);
  return done_;
}

const Result<rr::Buffer>& Invocation::Wait() {
  MutexLock lock(mutex_);
  cv_.wait(lock, [this]() RR_REQUIRES(mutex_) { return done_; });
  return result_;
}

const Result<Bytes>& Invocation::WaitBytes() {
  MutexLock lock(mutex_);
  cv_.wait(lock, [this]() RR_REQUIRES(mutex_) { return done_; });
  if (!bytes_result_.has_value()) {
    if (result_.ok()) {
      bytes_result_.emplace(result_->ToBytes());
    } else {
      bytes_result_.emplace(result_.status());
    }
  }
  return *bytes_result_;
}

bool Invocation::WaitFor(Nanos timeout) {
  MutexLock lock(mutex_);
  return cv_.wait_for(lock, timeout,
                      [this]() RR_REQUIRES(mutex_) { return done_; });
}

void Invocation::NotifyDone(std::function<void()> callback) {
  {
    MutexLock lock(mutex_);
    if (!done_) {
      done_callbacks_.push_back(std::move(callback));
      return;
    }
  }
  callback();  // already complete: fire on the caller's thread, lock dropped
}

Runtime::Runtime(std::string workflow) : Runtime(std::move(workflow), Options{}) {}

Runtime::Runtime(std::string workflow, Options options)
    : manager_(std::move(workflow)), executor_(&manager_, options.dag_workers) {
  executor_.set_remote_deadline(options.remote_deadline);
  manager_.hops().set_wire_options(
      core::TransportOptions{options.transfer_deadline});
  executor_.set_resilience_policy(options.resilience);
  if (options.resilience.enabled) {
    // Arm the hop table's per-replica circuit breakers alongside the retry
    // engine: a replica that keeps failing at the wire level is refused in
    // microseconds instead of burning a transfer deadline per attempt.
    manager_.hops().set_breaker_options(options.resilience.breaker);
  }
  if (options.tracing) {
    if (options.trace_capacity > 0) {
      obs::Tracer::Get().SetCapacity(options.trace_capacity);
    }
    obs::SetTracingEnabled(true);
  }
  if (options.serve_introspection) {
    obs::IntrospectionServer::Options intro;
    intro.port = options.introspection_port;
    intro.health_fields = [this] {
      std::vector<std::pair<std::string, int64_t>> fields{
          {"in_flight", static_cast<int64_t>(in_flight())}};
      // Failure-recovery visibility: how many breakers are currently
      // tripped, plus one entry per non-closed breaker (state 1 = open,
      // 2 = half-open) so an operator sees WHICH replica is refusing.
      int64_t open = 0;
      for (const auto& info : manager_.hops().BreakerSnapshot()) {
        if (info.state == resilience::BreakerState::kClosed) continue;
        if (info.state == resilience::BreakerState::kOpen) ++open;
        fields.emplace_back(
            "breaker:" + info.function + "#" + std::to_string(info.replica),
            static_cast<int64_t>(info.state));
      }
      fields.emplace_back("breakers_open", open);
      return fields;
    };
    auto server = obs::IntrospectionServer::Start(std::move(intro));
    if (server.ok()) {
      introspection_ = std::move(*server);
    } else {
      // Introspection is an accessory: a bind failure (port taken) must not
      // take the data plane down with it.
      RR_LOG(Warning) << "runtime: introspection endpoint failed to start: "
                      << server.status();
    }
  }
  size_t drivers = options.max_in_flight;
  if (drivers == 0) {
    drivers = std::max<size_t>(8, std::thread::hardware_concurrency());
  }
  drivers_.reserve(drivers);
  for (size_t i = 0; i < drivers; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

Runtime::~Runtime() {
  // Stop serving introspection first: its handler reads in_flight() off this
  // object, which must still be fully alive for every in-flight request.
  introspection_.reset();
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // Drivers drain the queue before exiting: every handle ever returned by
  // Submit completes, so a Wait() can never hang on teardown.
  for (std::thread& driver : drivers_) driver.join();
}

Status Runtime::Register(core::Endpoint endpoint) {
  return manager_.Register(std::move(endpoint));
}

Status Runtime::Unregister(const std::string& name) {
  return manager_.Unregister(name);
}

Result<std::shared_ptr<Invocation>> Runtime::Submit(const ChainSpec& spec,
                                                    rr::Buffer input) {
  // A chain is a linear DAG; one executor serves both shapes.
  dag::DagBuilder builder("chain");
  RR_ASSIGN_OR_RETURN(dag::Dag dag, builder.Chain(spec.functions).Build());
  return Enqueue(std::move(dag), std::move(input));
}

Result<std::shared_ptr<Invocation>> Runtime::Submit(const DagSpec& spec,
                                                    rr::Buffer input) {
  return Enqueue(spec.dag, std::move(input), spec.resilience);
}

Result<std::shared_ptr<Invocation>> Runtime::Submit(const ChainSpec& spec,
                                                    ByteSpan input) {
  return Submit(spec, rr::Buffer::Copy(input));
}

Result<std::shared_ptr<Invocation>> Runtime::Submit(const DagSpec& spec,
                                                    ByteSpan input) {
  return Submit(spec, rr::Buffer::Copy(input));
}

Result<std::shared_ptr<Invocation>> Runtime::Enqueue(
    dag::Dag dag, rr::Buffer input,
    std::optional<resilience::ResiliencePolicy> resilience) {
  // Validate now, not at execution: a rejected Submit is visible at the call
  // site, a failed background run only at Wait().
  for (const dag::DagNode& node : dag.nodes()) {
    RR_RETURN_IF_ERROR(manager_.Find(node.name).status());
  }
  auto invocation = std::shared_ptr<Invocation>(new Invocation(
      next_id_.fetch_add(1, std::memory_order_relaxed), std::move(dag),
      std::move(input)));
  invocation->resilience_ = std::move(resilience);
  // The run's trace id: everything the run touches — driver, DAG workers,
  // wire frames, the remote agent's process — spans under it. A caller that
  // is already inside a trace (the gateway tagging a request) propagates its
  // id so edge and execution stitch into one trace; otherwise Submit mints.
  if (obs::TracingEnabled()) {
    const uint64_t ambient = obs::CurrentSpanContext().trace_id;
    invocation->trace_id_ = ambient != 0 ? ambient : obs::NewTraceId();
  }
  invocation->submitted_ = Now();
  {
    MutexLock lock(mutex_);
    if (stopping_) {
      return UnavailableError("runtime is shutting down");
    }
    queue_.push_back(invocation);
  }
  SubmitTotal().Inc();
  InFlightRuns().Add(1);
  work_cv_.notify_one();
  return invocation;
}

void Runtime::DriverLoop() {
  for (;;) {
    std::shared_ptr<Invocation> invocation;
    {
      MutexLock lock(mutex_);
      work_cv_.wait(lock, [this]() RR_REQUIRES(mutex_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping and drained
      invocation = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
    }

    const TimePoint started = Now();
    RunStats stats;
    stats.queued = started - invocation->submitted_;
    Result<rr::Buffer> result{rr::Buffer{}};
    {
      // The run executes under the trace id Submit minted: the run span is
      // the root, and the executor re-installs this context on every DAG
      // worker that picks up one of the run's nodes.
      obs::ScopedTraceContext trace_ctx(
          obs::SpanContext{invocation->trace_id_, 0});
      RR_TRACE_SPAN(run_span, "api",
                    "run:" + std::to_string(invocation->id_));
      result = executor_.Execute(invocation->dag_, invocation->input_,
                                 &stats.dag, invocation->resilience_);
    }
    stats.total = Now() - started;
    SubmitLatency().Observe(ToSeconds(stats.queued + stats.total));

    // Retire from the in-flight count before publishing completion, so a
    // caller returning from Wait() observes in_flight() without this run.
    {
      MutexLock lock(mutex_);
      --executing_;
    }
    InFlightRuns().Sub(1);
    std::vector<std::function<void()>> callbacks;
    {
      MutexLock lock(invocation->mutex_);
      invocation->stats_ = std::move(stats);
      invocation->result_ = std::move(result);
      invocation->done_ = true;
      callbacks.swap(invocation->done_callbacks_);
    }
    invocation->cv_.notify_all();
    // Completion callbacks fire outside the invocation lock: they may read
    // the (now immutable) result through the handle.
    for (auto& callback : callbacks) callback();
  }
}

core::NodeAgent::DeliveryCallback Runtime::DeliverySink() {
  return executor_.DeliverySink();
}

size_t Runtime::in_flight() const {
  MutexLock lock(mutex_);
  return queue_.size() + executing_;
}

}  // namespace rr::api
