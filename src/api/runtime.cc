#include "api/runtime.h"

#include <algorithm>

namespace rr::api {

bool Invocation::Done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

const Result<rr::Buffer>& Invocation::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
  return result_;
}

const Result<Bytes>& Invocation::WaitBytes() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
  if (!bytes_result_.has_value()) {
    if (result_.ok()) {
      bytes_result_.emplace(result_->ToBytes());
    } else {
      bytes_result_.emplace(result_.status());
    }
  }
  return *bytes_result_;
}

bool Invocation::WaitFor(Nanos timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, timeout, [this] { return done_; });
}

Runtime::Runtime(std::string workflow) : Runtime(std::move(workflow), Options{}) {}

Runtime::Runtime(std::string workflow, Options options)
    : manager_(std::move(workflow)), executor_(&manager_, options.dag_workers) {
  executor_.set_remote_deadline(options.remote_deadline);
  manager_.hops().set_wire_options(
      core::TransportOptions{options.transfer_deadline});
  size_t drivers = options.max_in_flight;
  if (drivers == 0) {
    drivers = std::max<size_t>(8, std::thread::hardware_concurrency());
  }
  drivers_.reserve(drivers);
  for (size_t i = 0; i < drivers; ++i) {
    drivers_.emplace_back([this] { DriverLoop(); });
  }
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // Drivers drain the queue before exiting: every handle ever returned by
  // Submit completes, so a Wait() can never hang on teardown.
  for (std::thread& driver : drivers_) driver.join();
}

Status Runtime::Register(core::Endpoint endpoint) {
  return manager_.Register(std::move(endpoint));
}

Status Runtime::Unregister(const std::string& name) {
  return manager_.Unregister(name);
}

Result<std::shared_ptr<Invocation>> Runtime::Submit(const ChainSpec& spec,
                                                    rr::Buffer input) {
  // A chain is a linear DAG; one executor serves both shapes.
  dag::DagBuilder builder("chain");
  RR_ASSIGN_OR_RETURN(dag::Dag dag, builder.Chain(spec.functions).Build());
  return Enqueue(std::move(dag), std::move(input));
}

Result<std::shared_ptr<Invocation>> Runtime::Submit(const DagSpec& spec,
                                                    rr::Buffer input) {
  return Enqueue(spec.dag, std::move(input));
}

Result<std::shared_ptr<Invocation>> Runtime::Submit(const ChainSpec& spec,
                                                    ByteSpan input) {
  return Submit(spec, rr::Buffer::Copy(input));
}

Result<std::shared_ptr<Invocation>> Runtime::Submit(const DagSpec& spec,
                                                    ByteSpan input) {
  return Submit(spec, rr::Buffer::Copy(input));
}

Result<std::shared_ptr<Invocation>> Runtime::Enqueue(dag::Dag dag,
                                                     rr::Buffer input) {
  // Validate now, not at execution: a rejected Submit is visible at the call
  // site, a failed background run only at Wait().
  for (const dag::DagNode& node : dag.nodes()) {
    RR_RETURN_IF_ERROR(manager_.Find(node.name).status());
  }
  auto invocation = std::shared_ptr<Invocation>(new Invocation(
      next_id_.fetch_add(1, std::memory_order_relaxed), std::move(dag),
      std::move(input)));
  invocation->submitted_ = Now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return UnavailableError("runtime is shutting down");
    }
    queue_.push_back(invocation);
  }
  work_cv_.notify_one();
  return invocation;
}

void Runtime::DriverLoop() {
  for (;;) {
    std::shared_ptr<Invocation> invocation;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      invocation = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
    }

    const TimePoint started = Now();
    RunStats stats;
    stats.queued = started - invocation->submitted_;
    Result<rr::Buffer> result =
        executor_.Execute(invocation->dag_, invocation->input_, &stats.dag);
    stats.total = Now() - started;

    // Retire from the in-flight count before publishing completion, so a
    // caller returning from Wait() observes in_flight() without this run.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --executing_;
    }
    {
      std::lock_guard<std::mutex> lock(invocation->mutex_);
      invocation->stats_ = std::move(stats);
      invocation->result_ = std::move(result);
      invocation->done_ = true;
    }
    invocation->cv_.notify_all();
  }
}

core::NodeAgent::DeliveryCallback Runtime::DeliverySink() {
  return executor_.DeliverySink();
}

size_t Runtime::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + executing_;
}

}  // namespace rr::api
